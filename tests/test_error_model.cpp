#include "detector/error_model.hpp"

#include <gtest/gtest.h>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "detector/matching_graph.hpp"
#include "noise/depolarizing.hpp"

namespace radsurf {
namespace {

// ---------------------------------------------------------------------------
// propagate_error
// ---------------------------------------------------------------------------

TEST(Propagation, XBeforeMeasureFlipsRecord) {
  Circuit c;
  c.i(0);
  c.m(0);
  PauliString x = PauliString::from_string("X");
  EXPECT_EQ(propagate_error(c, 0, x), (std::vector<std::size_t>{0}));
  PauliString z = PauliString::from_string("Z");
  EXPECT_TRUE(propagate_error(c, 0, z).empty());
}

TEST(Propagation, SpreadsThroughCnot) {
  Circuit c;
  c.i(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  PauliString x = PauliString::from_string("XI");
  EXPECT_EQ(propagate_error(c, 0, x), (std::vector<std::size_t>{0, 1}));
}

TEST(Propagation, ResetAbsorbsError) {
  Circuit c;
  c.i(0);
  c.r(0);
  c.m(0);
  PauliString x = PauliString::from_string("X");
  EXPECT_TRUE(propagate_error(c, 0, x).empty());
}

TEST(Propagation, HadamardRotatesBasis) {
  Circuit c;
  c.i(0);
  c.h(0);
  c.m(0);
  PauliString z = PauliString::from_string("Z");
  EXPECT_EQ(propagate_error(c, 0, z), (std::vector<std::size_t>{0}));
  PauliString x = PauliString::from_string("X");
  EXPECT_TRUE(propagate_error(c, 0, x).empty());
}

TEST(Propagation, MrRecordsThenClears) {
  Circuit c;
  c.i(0);
  c.mr(0);
  c.m(0);
  PauliString x = PauliString::from_string("X");
  EXPECT_EQ(propagate_error(c, 0, x), (std::vector<std::size_t>{0}));
}

// ---------------------------------------------------------------------------
// DEM extraction on a tiny detector circuit
// ---------------------------------------------------------------------------

Circuit two_bit_parity_circuit(double p) {
  // Two data "measurements" guarded by one detector each, plus an
  // observable; X noise between.
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::X_ERROR, {0}, {p});
  c.m(0);
  c.detector({1});
  c.observable_include(0, {1});
  return c;
}

TEST(ErrorModel, SingleMechanismExtracted) {
  const auto dem = DetectorErrorModel::from_circuit(
      two_bit_parity_circuit(0.125));
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  EXPECT_DOUBLE_EQ(dem.mechanisms[0].probability, 0.125);
  EXPECT_EQ(dem.mechanisms[0].detectors, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(dem.mechanisms[0].observables, 1u);
  EXPECT_EQ(dem.num_detectors, 1u);
  EXPECT_EQ(dem.num_observables, 1u);
}

TEST(ErrorModel, ParallelMechanismsMerge) {
  // Two X_ERRORs with the same signature combine with XOR-probability.
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::X_ERROR, {0}, {0.1});
  c.append(Gate::X_ERROR, {0}, {0.2});
  c.m(0);
  c.detector({1});
  const auto dem = DetectorErrorModel::from_circuit(c);
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  EXPECT_NEAR(dem.mechanisms[0].probability, 0.1 * 0.8 + 0.2 * 0.9, 1e-12);
}

TEST(ErrorModel, InvisibleZNoiseIgnored) {
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::Z_ERROR, {0}, {0.3});
  c.m(0);
  c.detector({1});
  const auto dem = DetectorErrorModel::from_circuit(c);
  EXPECT_TRUE(dem.mechanisms.empty());
  EXPECT_EQ(dem.num_undetectable, 0u);
}

TEST(ErrorModel, UndetectableObservableFlipCounted) {
  // X error directly before an observable-only measurement: flips the
  // observable with no detector coverage.
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::X_ERROR, {0}, {0.01});
  c.m(0);
  c.observable_include(0, {1});
  const auto dem = DetectorErrorModel::from_circuit(c);
  EXPECT_TRUE(dem.mechanisms.empty());
  EXPECT_EQ(dem.num_undetectable, 1u);
}

TEST(ErrorModel, ResetErrorExcludedByDesign) {
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.m(0);
  c.detector({1});
  const auto dem = DetectorErrorModel::from_circuit(c);
  EXPECT_TRUE(dem.mechanisms.empty());
}

TEST(ErrorModel, Depolarize1SplitsIntoComponents) {
  // On a |0>-M circuit only X and Y components flip the record; each has
  // probability p/3 and identical signature -> merged.
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::DEPOLARIZE1, {0}, {0.3});
  c.m(0);
  c.detector({1});
  const auto dem = DetectorErrorModel::from_circuit(c);
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  // X (p/3) combined with Y (p/3): 0.1*0.9 + 0.1*0.9.
  EXPECT_NEAR(dem.mechanisms[0].probability, 0.18, 1e-12);
}

// ---------------------------------------------------------------------------
// DEM on real codes
// ---------------------------------------------------------------------------

TEST(ErrorModel, RepetitionDemIsMatchable) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Circuit noisy = DepolarizingModel{0.01}.apply(code.build());
  const auto dem = DetectorErrorModel::from_circuit(noisy);
  EXPECT_EQ(dem.num_detectors, 13u);
  EXPECT_GT(dem.mechanisms.size(), 4u);
  EXPECT_EQ(dem.num_unmatched, 0u);
  for (const auto& m : dem.mechanisms) {
    EXPECT_GE(m.detectors.size(), 1u);
    EXPECT_LE(m.detectors.size(), 2u);
    EXPECT_GT(m.probability, 0.0);
    EXPECT_LT(m.probability, 0.5);
  }
}

TEST(ErrorModel, XxzzDemIsMatchable) {
  const XXZZCode code(3, 3);
  const Circuit noisy = DepolarizingModel{0.01}.apply(code.build());
  const auto dem = DetectorErrorModel::from_circuit(noisy);
  EXPECT_EQ(dem.num_detectors, 17u);
  EXPECT_EQ(dem.num_unmatched, 0u);
  for (const auto& m : dem.mechanisms) {
    EXPECT_GE(m.detectors.size(), 1u);
    EXPECT_LE(m.detectors.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Matching graph construction
// ---------------------------------------------------------------------------

TEST(MatchingGraph, BoundaryAndInternalEdges) {
  DetectorErrorModel dem;
  dem.num_detectors = 3;
  dem.num_observables = 1;
  dem.mechanisms = {
      {0.01, {0}, 1},     // boundary edge with observable crossing
      {0.02, {0, 1}, 0},  // internal edge
      {0.03, {1, 2}, 0},
  };
  const auto g = MatchingGraph::from_dem(dem);
  EXPECT_EQ(g.num_detectors(), 3u);
  EXPECT_EQ(g.boundary_node(), 3u);
  EXPECT_EQ(g.edges().size(), 3u);
  // Boundary edge endpoints.
  bool found_boundary = false;
  for (const auto& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
    if (e.b == g.boundary_node()) {
      found_boundary = true;
      EXPECT_EQ(e.a, 0u);
      EXPECT_EQ(e.observables, 1u);
    }
  }
  EXPECT_TRUE(found_boundary);
  EXPECT_EQ(g.adjacent_edges(1).size(), 2u);
}

TEST(MatchingGraph, ParallelEdgesMergeOrConflict) {
  DetectorErrorModel dem;
  dem.num_detectors = 2;
  dem.num_observables = 1;
  dem.mechanisms = {
      {0.1, {0, 1}, 0},
      {0.2, {0, 1}, 0},  // same signature: merge
      {0.05, {0, 1}, 1}, // conflicting observable: keep likelier
  };
  const auto g = MatchingGraph::from_dem(dem);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_NEAR(g.edges()[0].probability, 0.1 * 0.8 + 0.2 * 0.9, 1e-12);
  EXPECT_EQ(g.edges()[0].observables, 0u);
  EXPECT_EQ(g.num_conflicting_edges(), 1u);
}

TEST(MatchingGraph, WeightsDecreaseWithProbability) {
  DetectorErrorModel dem;
  dem.num_detectors = 2;
  dem.num_observables = 0;
  dem.mechanisms = {{0.001, {0}, 0}, {0.1, {1}, 0}};
  const auto g = MatchingGraph::from_dem(dem);
  ASSERT_EQ(g.edges().size(), 2u);
  const double w_rare =
      g.edges()[0].probability < 0.01 ? g.edges()[0].weight
                                      : g.edges()[1].weight;
  const double w_common =
      g.edges()[0].probability < 0.01 ? g.edges()[1].weight
                                      : g.edges()[0].weight;
  EXPECT_GT(w_rare, w_common);
}

}  // namespace
}  // namespace radsurf
