// Tests of the readout (SPAM) error extension and the campaign engine's
// frame fast path.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "inject/campaign.hpp"
#include "noise/depolarizing.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

TEST(MeasError, InsertedBeforeMeasurements) {
  Circuit c;
  c.h(0);
  c.m(0);
  c.mr(1);
  DepolarizingModel model;
  model.p = 0.0;
  model.measurement_error = 0.05;
  const Circuit noisy = model.apply(c);
  // H, X_ERROR, M, X_ERROR, MR.
  ASSERT_EQ(noisy.size(), 5u);
  EXPECT_EQ(noisy.instructions()[1].gate, Gate::X_ERROR);
  EXPECT_EQ(noisy.instructions()[2].gate, Gate::M);
  EXPECT_EQ(noisy.instructions()[3].gate, Gate::X_ERROR);
  EXPECT_EQ(noisy.instructions()[4].gate, Gate::MR);
}

TEST(MeasError, ZeroRatesIdentity) {
  Circuit c;
  c.h(0);
  c.m(0);
  DepolarizingModel model;
  model.p = 0.0;
  model.measurement_error = 0.0;
  EXPECT_EQ(model.apply(c), c);
}

TEST(MeasError, InvalidRateRejected) {
  Circuit c;
  c.m(0);
  DepolarizingModel model;
  model.measurement_error = 1.2;
  EXPECT_THROW(model.apply(c), InvalidArgument);
}

TEST(MeasError, FlipsRecordedOutcomeAtStatedRate) {
  Circuit c;
  c.r(0);
  c.m(0);
  DepolarizingModel model;
  model.p = 0.0;
  model.measurement_error = 0.25;
  TableauSimulator sim(model.apply(c));
  Rng rng(5);
  int flips = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) flips += sim.sample(rng).get(0);
  EXPECT_NEAR(flips / static_cast<double>(n), 0.25, 0.02);
}

TEST(MeasError, SyndromeFlipMakesVerticalDefectPair) {
  // A readout error on a syndrome qubit in round 1 fires that round's
  // detector and the paired round-2 detector -- the classic vertical
  // (time-like) edge.  The engine must stay decodable with pm > 0.
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.measurement_error_rate = 2e-2;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const auto base = engine.run_intrinsic(1500, 7);
  EXPECT_LT(base.rate(), 0.25);
  // Higher readout error must not *reduce* the logical error rate.
  EngineOptions clean;
  clean.measurement_error_rate = 0.0;
  InjectionEngine engine_clean(code, make_mesh(5, 2), clean);
  const auto base_clean = engine_clean.run_intrinsic(1500, 7);
  EXPECT_GE(base.rate() + 0.03, base_clean.rate());
}

TEST(FrameFastPath, MatchesTableauPathStatistically) {
  // Intrinsic-only campaigns take the frame path; erasure campaigns take
  // the tableau path.  Force the tableau path for an intrinsic campaign
  // by adding a zero-qubit... instead: compare the frame-path LER against
  // an independently seeded tableau-path LER via a probability-0 reset
  // instrumentation (which forces the tableau engine without changing the
  // distribution).
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const std::size_t shots = 4000;
  const auto frame = engine.run_intrinsic(shots, 11);
  // A reset field of probability epsilon ~ 0 on one qubit keeps the
  // distribution while forcing the exact tableau engine.
  std::vector<double> probs(engine.architecture().num_nodes(), 0.0);
  probs[0] = 1e-12;
  const auto tableau = engine.run_reset_probs(probs, shots, 12);
  EXPECT_NEAR(frame.rate(), tableau.rate(), 0.03);
}

TEST(FrameFastPath, ZeroNoiseStillExactlyZero) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.physical_error_rate = 0.0;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const auto res = engine.run_intrinsic(500, 13);
  EXPECT_EQ(res.successes, 0u);
}

}  // namespace
}  // namespace radsurf
