#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace radsurf {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.num_words(), 3u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.flip(63);
  EXPECT_TRUE(v.get(63));
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, OutOfRangeAccessThrows) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), Error);
  EXPECT_THROW(v.set(10, true), Error);
  EXPECT_THROW(v.flip(10), Error);
}

TEST(BitVec, XorAndOr) {
  BitVec a(100), b(100);
  a.set(3, true);
  a.set(77, true);
  b.set(77, true);
  b.set(99, true);

  BitVec x = a;
  x ^= b;
  EXPECT_TRUE(x.get(3));
  EXPECT_FALSE(x.get(77));
  EXPECT_TRUE(x.get(99));

  BitVec n = a;
  n &= b;
  EXPECT_FALSE(n.get(3));
  EXPECT_TRUE(n.get(77));
  EXPECT_FALSE(n.get(99));

  BitVec o = a;
  o |= b;
  EXPECT_EQ(o.popcount(), 3u);
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW(a ^= b, Error);
  EXPECT_THROW(a &= b, Error);
  EXPECT_THROW((void)a.and_parity(b), Error);
}

TEST(BitVec, Parity) {
  BitVec v(65);
  EXPECT_FALSE(v.parity());
  v.set(64, true);
  EXPECT_TRUE(v.parity());
  v.set(0, true);
  EXPECT_FALSE(v.parity());
}

TEST(BitVec, AndParityMatchesManual) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    BitVec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) a.set(i, true);
      if (rng.bernoulli(0.5)) b.set(i, true);
    }
    bool expect = false;
    for (std::size_t i = 0; i < n; ++i) expect ^= a.get(i) && b.get(i);
    EXPECT_EQ(a.and_parity(b), expect) << "n=" << n;
  }
}

TEST(BitVec, FirstSetAndSetBits) {
  BitVec v(150);
  EXPECT_EQ(v.first_set(), 150u);
  v.set(149, true);
  EXPECT_EQ(v.first_set(), 149u);
  v.set(64, true);
  EXPECT_EQ(v.first_set(), 64u);
  v.set(5, true);
  EXPECT_EQ(v.first_set(), 5u);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 5u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 149u);
}

TEST(BitVec, ClearResets) {
  BitVec v(80);
  v.set(1, true);
  v.set(79, true);
  v.clear();
  EXPECT_TRUE(v.none());
}

TEST(BitVec, SwapExchangesContent) {
  BitVec a(40), b(40);
  a.set(7, true);
  b.set(30, true);
  a.swap(b);
  EXPECT_TRUE(a.get(30));
  EXPECT_FALSE(a.get(7));
  EXPECT_TRUE(b.get(7));
}

TEST(BitVec, EqualityAndToString) {
  BitVec a(5), b(5);
  a.set(2, true);
  EXPECT_NE(a, b);
  b.set(2, true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "00100");
}

TEST(BitVec, EmptyVector) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.first_set(), 0u);
}

class BitVecSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecSizes, PopcountMatchesSetBits) {
  const std::size_t n = GetParam();
  Rng rng(7 + n);
  BitVec v(n);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      v.set(i, true);
      ++manual;
    }
  }
  EXPECT_EQ(v.popcount(), manual);
  EXPECT_EQ(v.set_bits().size(), manual);
  EXPECT_EQ(v.parity(), manual % 2 == 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecSizes,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129,
                                           1000));

}  // namespace
}  // namespace radsurf
