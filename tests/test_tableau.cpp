#include "stab/tableau.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(Tableau, InitialStateIsAllZeros) {
  Tableau t(4);
  Rng rng(1);
  EXPECT_TRUE(t.is_valid());
  for (std::uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(t.peek_z(q), +1);
    EXPECT_FALSE(t.measure(q, rng));
  }
}

TEST(Tableau, XFlipsMeasurement) {
  Tableau t(3);
  Rng rng(2);
  t.apply_x(1);
  EXPECT_EQ(t.peek_z(0), +1);
  EXPECT_EQ(t.peek_z(1), -1);
  EXPECT_TRUE(t.measure(1, rng));
  EXPECT_FALSE(t.measure(0, rng));
  EXPECT_TRUE(t.is_valid());
}

TEST(Tableau, ZAndYPhases) {
  Tableau t(1);
  Rng rng(3);
  t.apply_z(0);  // Z|0> = |0>
  EXPECT_EQ(t.peek_z(0), +1);
  t.apply_y(0);  // Y|0> = i|1>
  EXPECT_EQ(t.peek_z(0), -1);
  EXPECT_TRUE(t.measure(0, rng));
}

TEST(Tableau, HadamardMakesRandomOutcome) {
  Tableau t(1);
  t.apply_h(0);
  EXPECT_EQ(t.peek_z(0), 0);  // superposition: random
  // Statistics: ~50/50 over fresh tableaus.
  Rng rng(4);
  int ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Tableau s(1);
    s.apply_h(0);
    ones += s.measure(0, rng);
  }
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.05);
}

TEST(Tableau, MeasurementCollapses) {
  Tableau t(1);
  Rng rng(5);
  t.apply_h(0);
  bool was_random = false;
  const bool m1 = t.measure(0, rng, false, &was_random);
  EXPECT_TRUE(was_random);
  const bool m2 = t.measure(0, rng, false, &was_random);
  EXPECT_FALSE(was_random);  // collapsed now
  EXPECT_EQ(m1, m2);
  EXPECT_TRUE(t.is_valid());
}

TEST(Tableau, BellPairCorrelations) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    Tableau t(2);
    t.apply_h(0);
    t.apply_cx(0, 1);
    // Perfectly correlated Z outcomes.
    const bool a = t.measure(0, rng);
    const bool b = t.measure(1, rng);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(t.is_valid());
  }
}

TEST(Tableau, GhzCorrelations) {
  Rng rng(7);
  int ones = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    Tableau t(5);
    t.apply_h(0);
    for (std::uint32_t q = 0; q + 1 < 5; ++q) t.apply_cx(q, q + 1);
    const bool first = t.measure(0, rng);
    for (std::uint32_t q = 1; q < 5; ++q) EXPECT_EQ(t.measure(q, rng), first);
    ones += first;
  }
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.1);
}

TEST(Tableau, PlusStateStabilizedByX) {
  // |+> measured after H-Z-H = X basis flip logic: H Z H = X.
  Tableau t(1);
  Rng rng(8);
  t.apply_h(0);
  t.apply_z(0);
  t.apply_h(0);  // net effect: X|0> = |1>
  EXPECT_EQ(t.peek_z(0), -1);
}

TEST(Tableau, SGateSquaredIsZ) {
  Tableau t(1);
  Rng rng(9);
  t.apply_h(0);  // |+>
  t.apply_s(0);
  t.apply_s(0);  // S^2 = Z: |+> -> |->
  t.apply_h(0);  // |-> -> |1>
  EXPECT_EQ(t.peek_z(0), -1);
}

TEST(Tableau, SdagUndoesS) {
  Tableau t(1);
  t.apply_h(0);
  t.apply_s(0);
  t.apply_s_dag(0);
  t.apply_h(0);  // back to |0>
  EXPECT_EQ(t.peek_z(0), +1);
}

TEST(Tableau, CzEquivalentToHCxH) {
  // CZ |+1> = -|+1> observable via H on control: check phase kickback.
  Tableau a(2);
  a.apply_h(0);
  a.apply_x(1);
  a.apply_cz(0, 1);
  a.apply_h(0);  // phase kickback flips qubit 0
  EXPECT_EQ(a.peek_z(0), -1);
}

TEST(Tableau, SwapMovesState) {
  Tableau t(2);
  Rng rng(10);
  t.apply_x(0);
  t.apply_swap(0, 1);
  EXPECT_EQ(t.peek_z(0), +1);
  EXPECT_EQ(t.peek_z(1), -1);
}

TEST(Tableau, ResetForcesZero) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Tableau t(2);
    t.apply_h(0);
    t.apply_cx(0, 1);
    t.apply_x(1);
    t.reset(0, rng);
    EXPECT_EQ(t.peek_z(0), +1) << "reset must force |0>";
    EXPECT_TRUE(t.is_valid());
  }
}

TEST(Tableau, ResetDestroysEntanglement) {
  Rng rng(12);
  int agree = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    Tableau t(2);
    t.apply_h(0);
    t.apply_cx(0, 1);  // Bell pair
    t.reset(0, rng);   // qubit 1 left maximally mixed
    const bool a = t.measure(0, rng);
    const bool b = t.measure(1, rng);
    EXPECT_FALSE(a);
    agree += (a == b);
  }
  // Qubit 1 is 50/50 after the reset of its partner.
  EXPECT_NEAR(agree / static_cast<double>(n), 0.5, 0.06);
}

TEST(Tableau, ForceZeroReferenceMeasurements) {
  Rng rng(13);
  Tableau t(1);
  t.apply_h(0);
  bool was_random = false;
  EXPECT_FALSE(t.measure(0, rng, /*force_zero_if_random=*/true, &was_random));
  EXPECT_TRUE(was_random);
  // State must now be consistently |0>.
  EXPECT_EQ(t.peek_z(0), +1);
}

TEST(Tableau, ValidityUnderRandomCircuits) {
  Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.below(6);
    Tableau t(n);
    for (int step = 0; step < 60; ++step) {
      const auto q = static_cast<std::uint32_t>(rng.below(n));
      switch (rng.below(7)) {
        case 0: t.apply_h(q); break;
        case 1: t.apply_s(q); break;
        case 2: t.apply_x(q); break;
        case 3: t.apply_z(q); break;
        case 4: {
          auto r = static_cast<std::uint32_t>(rng.below(n));
          if (r != q) t.apply_cx(q, r);
          break;
        }
        case 5: t.measure(q, rng); break;
        default: t.reset(q, rng); break;
      }
    }
    EXPECT_TRUE(t.is_valid()) << "trial " << trial;
  }
}

TEST(Tableau, RowAccessors) {
  Tableau t(2);
  EXPECT_EQ(t.row(0).to_string(), "+XI");  // destabilizer 0
  EXPECT_EQ(t.row(2).to_string(), "+ZI");  // stabilizer 0
  EXPECT_EQ(t.row(3).to_string(), "+IZ");
}

}  // namespace
}  // namespace radsurf
