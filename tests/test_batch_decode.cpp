// Pins the batch-major decode path (64×64 transpose boundary, record-word
// fast path, word-keyed cache probes) bit-for-bit against the per-bit
// oracle (EngineOptions::batch_major_decode = false): identical error
// counts AND identical decode-cache hit/lookup statistics, per campaign
// kind, code family and seed.  Also exercises the decode_syndrome API
// directly against decode(defects).
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/mwpm.hpp"
#include "detector/error_model.hpp"
#include "inject/campaign.hpp"
#include "noise/depolarizing.hpp"
#include "noise/timeline.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

struct EngineConfig {
  const SurfaceCode& code;
  const Graph& arch;
};

// One campaign through two fresh engines that differ only in the decode
// path; errors and cache stats must agree exactly.
template <typename RunFn>
void expect_paths_agree(const SurfaceCode& code, const Graph& arch,
                        EngineOptions options, const RunFn& run,
                        const std::string& what) {
  options.batch_major_decode = true;
  const InjectionEngine batch(code, arch, options);
  options.batch_major_decode = false;
  const InjectionEngine per_bit(code, arch, options);

  const Proportion batch_result = run(batch);
  const Proportion per_bit_result = run(per_bit);
  EXPECT_EQ(batch_result.successes, per_bit_result.successes) << what;
  EXPECT_EQ(batch_result.trials, per_bit_result.trials) << what;

  const DecodeCacheStats batch_stats = batch.decode_cache_stats();
  const DecodeCacheStats per_bit_stats = per_bit.decode_cache_stats();
  EXPECT_EQ(batch_stats.lookups, per_bit_stats.lookups) << what;
  EXPECT_EQ(batch_stats.hits, per_bit_stats.hits) << what;
}

TEST(BatchDecode, IntrinsicMatchesPerBitOracle) {
  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const XXZZCode xxzz33(3, 3);
  const Graph mesh52 = make_mesh(5, 2);
  const Graph mesh54 = make_mesh(5, 4);
  for (const std::uint64_t seed : {1ull, 77ull, 20260730ull}) {
    const auto run = [seed](const InjectionEngine& e) {
      return e.run_intrinsic(3000, seed);
    };
    expect_paths_agree(rep5, mesh52, EngineOptions{}, run,
                       "rep5 intrinsic seed " + std::to_string(seed));
    expect_paths_agree(xxzz33, mesh54, EngineOptions{}, run,
                       "xxzz33 intrinsic seed " + std::to_string(seed));
  }
}

TEST(BatchDecode, RadiationMatchesPerBitOracle) {
  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const Graph mesh52 = make_mesh(5, 2);
  for (const std::uint64_t seed : {3ull, 99ull}) {
    const auto run = [seed](const InjectionEngine& e) {
      return e.run_radiation_at(2, 0.8, true, 2000, seed);
    };
    expect_paths_agree(rep5, mesh52, EngineOptions{}, run,
                       "rep5 radiation seed " + std::to_string(seed));
  }
}

TEST(BatchDecode, ErasureMatchesPerBitOracle) {
  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const Graph mesh52 = make_mesh(5, 2);
  for (const std::uint64_t seed : {5ull, 123ull}) {
    const auto run = [seed](const InjectionEngine& e) {
      return e.run_erasure({1, 2}, 2000, seed);
    };
    expect_paths_agree(rep5, mesh52, EngineOptions{}, run,
                       "rep5 erasure seed " + std::to_string(seed));
  }
}

TEST(BatchDecode, MeasurementErrorCampaignMatchesPerBitOracle) {
  // Readout errors exercise multi-defect syndromes and the cluster cache.
  const XXZZCode xxzz33(3, 3);
  const Graph mesh54 = make_mesh(5, 4);
  EngineOptions options;
  options.measurement_error_rate = 2e-2;
  const auto run = [](const InjectionEngine& e) {
    return e.run_intrinsic(2000, 42);
  };
  expect_paths_agree(xxzz33, mesh54, options, run, "xxzz33 meas error");
}

TEST(BatchDecode, TimelineWindowDecodingMatchesPerBitOracle) {
  // The timeline path feeds SlidingWindowDecoder through the same
  // transposed boundary (via the engine's per-call CachingDecoder); the
  // 40-round circuit also exceeds 64 records, covering the detector-major
  // (non record-word) batch path.
  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const Graph mesh52 = make_mesh(5, 2);
  EngineOptions options;
  options.rounds = 40;
  options.whole_history_decoder = false;

  TimelineOptions topts;
  topts.events_per_round = 0.05;
  topts.duration_rounds = 5;

  options.batch_major_decode = true;
  const InjectionEngine batch(rep5, mesh52, options);
  options.batch_major_decode = false;
  const InjectionEngine per_bit(rep5, mesh52, options);

  const RadiationTimeline timeline(batch.radiation(), topts);
  Rng event_rng(7);
  const auto events = timeline.sample(40, batch.active_qubits(), event_rng);
  const SlidingWindowOptions window{8, 4};

  const Proportion a = batch.run_timeline(timeline, events, 300, 9, window);
  const Proportion b =
      per_bit.run_timeline(timeline, events, 300, 9, window);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trials, b.trials);
  const DecodeCacheStats sa = batch.decode_cache_stats();
  const DecodeCacheStats sb = per_bit.decode_cache_stats();
  EXPECT_EQ(sa.lookups, sb.lookups);
  EXPECT_EQ(sa.hits, sb.hits);
}

// --- decode_syndrome API ----------------------------------------------------

MatchingGraph rep15_graph() {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(15, RepetitionFlavor::BIT_FLIP).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint64_t> syndrome_words(
    const std::vector<std::uint32_t>& defects, std::size_t num_words) {
  std::vector<std::uint64_t> words(num_words, 0);
  for (const std::uint32_t d : defects)
    words[d / 64] |= std::uint64_t{1} << (d % 64);
  return words;
}

TEST(DecodeSyndrome, MatchesDefectListDecoding) {
  const auto graph = rep15_graph();
  MwpmDecoder oracle_inner(graph);
  MwpmDecoder word_inner(graph);
  CachingDecoder oracle(oracle_inner);
  CachingDecoder word_path(word_inner);
  const std::size_t num_words = (graph.num_detectors() + 63) / 64;

  Rng rng(21);
  for (int rep = 0; rep < 400; ++rep) {
    std::vector<std::uint32_t> defects;
    const std::size_t k = rng.below(7);
    while (defects.size() < k) {
      const auto d =
          static_cast<std::uint32_t>(rng.below(graph.num_detectors()));
      if (std::find(defects.begin(), defects.end(), d) == defects.end())
        defects.push_back(d);
    }
    std::sort(defects.begin(), defects.end());
    const auto words = syndrome_words(defects, num_words);
    EXPECT_EQ(word_path.decode_syndrome(words.data(), words.size()),
              oracle.decode(defects));
  }
  // Same syndrome stream, entry points differ: stats must agree exactly.
  EXPECT_EQ(word_path.stats().lookups, oracle.stats().lookups);
  EXPECT_EQ(word_path.stats().hits, oracle.stats().hits);
}

TEST(DecodeSyndrome, EmptySyndromeBypassesCounters) {
  const auto graph = rep15_graph();
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  const std::vector<std::uint64_t> zero(3, 0);
  EXPECT_EQ(cached.decode_syndrome(zero.data(), zero.size()), 0u);
  EXPECT_EQ(cached.stats().lookups, 0u);
  EXPECT_EQ(cached.stats().hits, 0u);
}

TEST(DecodeSyndrome, WideSpansBypassTheL1AndStillMatch) {
  // Spans over 4 words skip the per-thread L1 (capacity) but must decode
  // and memoize identically.  Trailing zero-padding words are part of the
  // span contract.
  const auto graph = rep15_graph();
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  MwpmDecoder oracle(graph);
  const std::vector<std::uint32_t> defects{1, 5, 19};
  const auto words = syndrome_words(defects, 6);  // > kL1MaxWords
  const std::uint64_t expected = oracle.decode(defects);
  EXPECT_EQ(cached.decode_syndrome(words.data(), words.size()), expected);
  EXPECT_EQ(cached.decode_syndrome(words.data(), words.size()), expected);
  EXPECT_EQ(cached.stats().lookups, 2u);
  EXPECT_EQ(cached.stats().hits, 1u);
}

TEST(DecodeSyndrome, DefaultImplementationCoversPlainDecoders) {
  // Non-caching decoders fall back to Decoder::decode_syndrome's
  // word-scan → decode(defects) default.
  const auto graph = rep15_graph();
  MwpmDecoder plain(graph);
  MwpmDecoder oracle(graph);
  const std::vector<std::uint32_t> defects{2, 9};
  const auto words = syndrome_words(defects, 1);
  EXPECT_EQ(plain.decode_syndrome(words.data(), words.size()),
            oracle.decode(defects));
}

}  // namespace
}  // namespace radsurf
