#include "codes/code.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"

#include <gtest/gtest.h>

#include "detector/detectors.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

// Every code circuit must be "clean" at zero noise: all detectors zero and
// the observable reading logical |1> (the encoded logical X).
void expect_noiseless_clean(const SurfaceCode& code, std::size_t rounds = 2) {
  const Circuit c = code.build(rounds);
  const DetectorSet ds = DetectorSet::compile(c);
  TableauSimulator sim(c);
  const BitVec ref = sim.reference_sample();

  // Reference observable must be 1 (logical X was applied).
  bool obs = false;
  for (std::size_t r : ds.observable_mask(0).set_bits()) obs ^= ref.get(r);
  EXPECT_TRUE(obs) << code.name() << ": noiseless readout must be |1>";

  // Detectors must be deterministic: any noiseless sample has the same
  // detector parities as the reference (random X-stabilizer projections
  // included).
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec sample = sim.sample(rng);  // no noise instructions
    EXPECT_TRUE(ds.detector_values(sample, ref).none())
        << code.name() << " trial " << trial;
    EXPECT_EQ(ds.observable_values(sample, ref), 0u);
  }
}

// ---------------------------------------------------------------------------
// Repetition code
// ---------------------------------------------------------------------------

TEST(RepetitionCode, QubitBudgetMatchesPaper) {
  for (int d : {3, 5, 7, 9, 11, 13, 15}) {
    const RepetitionCode code(d, RepetitionFlavor::BIT_FLIP);
    EXPECT_EQ(code.num_qubits(), static_cast<std::size_t>(2 * d));
    EXPECT_EQ(code.qubits_with_role(QubitRole::DATA).size(),
              static_cast<std::size_t>(d));
    EXPECT_EQ(code.qubits_with_role(QubitRole::STABILIZER).size(),
              static_cast<std::size_t>(d - 1));
    EXPECT_EQ(code.qubits_with_role(QubitRole::ANCILLA).size(), 1u);
  }
}

TEST(RepetitionCode, DistanceTuples) {
  EXPECT_EQ(RepetitionCode(5, RepetitionFlavor::BIT_FLIP).distance(),
            (std::pair{5, 1}));
  EXPECT_EQ(RepetitionCode(5, RepetitionFlavor::PHASE_FLIP).distance(),
            (std::pair{1, 5}));
}

TEST(RepetitionCode, RejectsBadDistance) {
  EXPECT_THROW(RepetitionCode(4, RepetitionFlavor::BIT_FLIP),
               InvalidArgument);
  EXPECT_THROW(RepetitionCode(1, RepetitionFlavor::BIT_FLIP),
               InvalidArgument);
}

TEST(RepetitionCode, NoiselessCleanBitFlip) {
  for (int d : {3, 5, 9}) {
    expect_noiseless_clean(RepetitionCode(d, RepetitionFlavor::BIT_FLIP));
  }
}

TEST(RepetitionCode, NoiselessCleanPhaseFlip) {
  for (int d : {3, 5, 9}) {
    expect_noiseless_clean(RepetitionCode(d, RepetitionFlavor::PHASE_FLIP));
  }
}

TEST(RepetitionCode, MoreRoundsStillClean) {
  expect_noiseless_clean(RepetitionCode(3, RepetitionFlavor::BIT_FLIP), 4);
  EXPECT_THROW(RepetitionCode(3, RepetitionFlavor::BIT_FLIP).build(1),
               InvalidArgument);
}

TEST(RepetitionCode, DetectorCountMatchesRounds) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  // Per round: d-1 stabilizer detectors; plus d-1 final-reconstruction
  // detectors and 1 ancilla-consistency detector.
  EXPECT_EQ(code.build(2).num_detectors(), 2u * 4u + 4u + 1u);
  EXPECT_EQ(code.build(3).num_detectors(), 3u * 4u + 4u + 1u);
  EXPECT_EQ(code.build(2).num_observables(), 1u);
}

TEST(RepetitionCode, SingleDataXFlipTripsAdjacentStabilizers) {
  // Inject X on middle data qubit between the rounds: exactly the two
  // adjacent round-2 detectors fire, and the readout parity flips.
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  Circuit base = code.build();
  // Build an identical circuit with a deterministic X error after the
  // logical X block (we re-create and insert X_ERROR(1.0) on data qubit 2).
  Circuit modified(base.num_qubits());
  bool injected = false;
  std::size_t x_streak = 0;
  for (const Instruction& ins : base.instructions()) {
    if (gate_info(ins.gate).is_annotation) {
      modified.append_annotation(ins.gate, ins.lookbacks, ins.args);
      continue;
    }
    modified.append(ins.gate, ins.targets, ins.args);
    if (ins.gate == Gate::X && !injected) {
      // The logical X block is d consecutive X gates on data qubits.
      if (++x_streak == 5) {
        modified.append(Gate::X_ERROR, {2}, {1.0});
        injected = true;
      }
    }
  }
  ASSERT_TRUE(injected);

  const DetectorSet ds = DetectorSet::compile(modified);
  TableauSimulator ref_sim(base);
  const BitVec ref = ref_sim.reference_sample();
  TableauSimulator sim(modified);
  Rng rng(3);
  const BitVec rec = sim.sample(rng);
  const auto defects = ds.defects(rec, ref);
  // Stabilizers 1 and 2 (neighbouring data qubit 2) in round 2.
  EXPECT_EQ(defects.size(), 2u);
  EXPECT_EQ(ds.observable_values(rec, ref), 1u);  // readout flipped
}

TEST(RepetitionCode, LogicalSupportIsAllData) {
  const RepetitionCode code(7, RepetitionFlavor::BIT_FLIP);
  EXPECT_EQ(code.logical_op_support().size(), 7u);
}

// ---------------------------------------------------------------------------
// XXZZ code
// ---------------------------------------------------------------------------

TEST(XxzzCode, QubitBudgetMatchesPaper) {
  const XXZZCode code(3, 3);
  EXPECT_EQ(code.num_qubits(), 18u);  // 2 * dZ * dX
  EXPECT_EQ(code.num_z_plaquettes(), 4u);
  EXPECT_EQ(code.num_x_plaquettes(), 4u);
  EXPECT_EQ(code.qubits_with_role(QubitRole::DATA).size(), 9u);
  EXPECT_EQ(code.qubits_with_role(QubitRole::STABILIZER).size(), 8u);
  EXPECT_EQ(code.qubits_with_role(QubitRole::ANCILLA).size(), 1u);
}

TEST(XxzzCode, PlaquetteStructure) {
  const XXZZCode code(3, 3);
  std::size_t weight2 = 0, weight4 = 0;
  for (const auto& p : code.plaquettes()) {
    if (p.data.size() == 2) ++weight2;
    else if (p.data.size() == 4) ++weight4;
    else FAIL() << "plaquette weight " << p.data.size();
  }
  EXPECT_EQ(weight2, 4u);  // boundary faces
  EXPECT_EQ(weight4, 4u);  // interior faces
}

TEST(XxzzCode, DegenerateDistancesCollapseToRepetition) {
  // Paper Fig. 6b: (3,1) and (1,3) have circuit size 6.
  const XXZZCode bitflip(3, 1);
  EXPECT_EQ(bitflip.num_qubits(), 6u);
  EXPECT_EQ(bitflip.num_z_plaquettes(), 2u);
  EXPECT_EQ(bitflip.num_x_plaquettes(), 0u);

  const XXZZCode phaseflip(1, 3);
  EXPECT_EQ(phaseflip.num_qubits(), 6u);
  EXPECT_EQ(phaseflip.num_z_plaquettes(), 0u);
  EXPECT_EQ(phaseflip.num_x_plaquettes(), 2u);
}

TEST(XxzzCode, RejectsBadDistances) {
  EXPECT_THROW(XXZZCode(2, 3), InvalidArgument);
  EXPECT_THROW(XXZZCode(3, 4), InvalidArgument);
  EXPECT_THROW(XXZZCode(1, 1), InvalidArgument);
}

class XxzzNoiselessClean
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(XxzzNoiselessClean, AllDetectorsZeroObservableOne) {
  const auto [dz, dx] = GetParam();
  expect_noiseless_clean(XXZZCode(dz, dx));
}

INSTANTIATE_TEST_SUITE_P(Distances, XxzzNoiselessClean,
                         ::testing::Values(std::pair{3, 3}, std::pair{3, 1},
                                           std::pair{1, 3}, std::pair{3, 5},
                                           std::pair{5, 3}, std::pair{5, 5}));

TEST(XxzzCode, StabilizersCommuteWithLogicals) {
  const XXZZCode code(3, 3);
  // Build Pauli strings over the data grid and verify commutation.
  const std::size_t n = 9;
  auto plaquette_pauli = [&](const XXZZCode::Plaquette& p) {
    PauliString s(n);
    for (std::uint32_t q : p.data) s.set_pauli(q, p.x_type ? 1 : 2);
    return s;
  };
  PauliString logical_x(n);
  for (std::uint32_t q : code.logical_op_support()) logical_x.set_pauli(q, 1);
  PauliString logical_z(n);
  for (std::uint32_t q : code.logical_z_support()) logical_z.set_pauli(q, 2);

  EXPECT_FALSE(logical_x.commutes_with(logical_z));
  for (const auto& p : code.plaquettes()) {
    const PauliString sp = plaquette_pauli(p);
    EXPECT_TRUE(sp.commutes_with(logical_x)) << "plaquette vs X_L";
    EXPECT_TRUE(sp.commutes_with(logical_z)) << "plaquette vs Z_L";
    for (const auto& q : code.plaquettes()) {
      EXPECT_TRUE(sp.commutes_with(plaquette_pauli(q)));
    }
  }
}

TEST(XxzzCode, LogicalWeightsMatchDistances) {
  const XXZZCode code(5, 3);
  EXPECT_EQ(code.logical_op_support().size(), 5u);  // X_L column, weight dZ
  EXPECT_EQ(code.logical_z_support().size(), 3u);   // Z_L row, weight dX
}

TEST(XxzzCode, DetectorCount) {
  const XXZZCode code(3, 3);
  // Round 1: only the 4 Z-plaquettes are deterministic; round 2: all 8;
  // final: 4 Z-plaquette reconstructions + 1 ancilla consistency.
  EXPECT_EQ(code.build(2).num_detectors(), 4u + 8u + 4u + 1u);
  EXPECT_EQ(code.build(3).num_detectors(), 4u + 8u + 8u + 4u + 1u);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(CodeFactory, MakesExpectedTypes) {
  const auto rep = make_code(CodeFamily::REPETITION, 5, 1);
  EXPECT_EQ(rep->distance(), (std::pair{5, 1}));
  const auto repf = make_code(CodeFamily::REPETITION, 1, 5);
  EXPECT_EQ(repf->distance(), (std::pair{1, 5}));
  const auto xxzz = make_code(CodeFamily::XXZZ, 3, 3);
  EXPECT_EQ(xxzz->num_qubits(), 18u);
  EXPECT_THROW(make_code(CodeFamily::REPETITION, 3, 3), InvalidArgument);
}

TEST(CodeFactory, RoleNames) {
  EXPECT_EQ(role_name(QubitRole::DATA), "data");
  EXPECT_EQ(role_name(QubitRole::STABILIZER), "stabilizer");
  EXPECT_EQ(role_name(QubitRole::ANCILLA), "ancilla");
}

}  // namespace
}  // namespace radsurf
