// Rotated surface code structure and behaviour.
//
// Structure: for odd d the lattice must have d^2 data qubits,
// (d^2 - 1)/2 plaquettes of each type, exactly 2(d - 1) weight-2 boundary
// faces obeying the boundary rule (X on top/bottom, Z on left/right), and
// a mutually commuting stabilizer group that commutes with both logical
// representatives (which anticommute with each other).
//
// Behaviour: both memory bases decode cleanly at zero noise, and a small
// memory experiment reproduces golden logical-error-rate fixtures through
// the full injection pipeline on the native architecture.
#include "codes/rotated.hpp"

#include <gtest/gtest.h>

#include "codes/code.hpp"
#include "detector/detectors.hpp"
#include "inject/campaign.hpp"
#include "stab/pauli.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

PauliString plaquette_pauli(const RotatedCode::Plaquette& p, std::size_t n) {
  PauliString s(n);
  for (std::uint32_t q : p.data) s.set_pauli(q, p.x_type ? 1 : 2);
  return s;
}

class RotatedStructure : public ::testing::TestWithParam<int> {};

TEST_P(RotatedStructure, QubitBudget) {
  const int d = GetParam();
  const auto n = static_cast<std::size_t>(d) * static_cast<std::size_t>(d);
  for (const RotatedMemory mem : {RotatedMemory::X, RotatedMemory::Z}) {
    const RotatedCode code(d, mem);
    EXPECT_EQ(code.num_qubits(), 2 * n - 1);
    EXPECT_EQ(code.num_z_plaquettes(), (n - 1) / 2);
    EXPECT_EQ(code.num_x_plaquettes(), (n - 1) / 2);
    EXPECT_EQ(code.qubits_with_role(QubitRole::DATA).size(), n);
    EXPECT_EQ(code.qubits_with_role(QubitRole::STABILIZER).size(), n - 1);
    // Pure memory experiment: no readout ancilla.
    EXPECT_EQ(code.qubits_with_role(QubitRole::ANCILLA).size(), 0u);
  }
}

TEST_P(RotatedStructure, BoundaryPlaquettesHaveWeightTwo) {
  const int d = GetParam();
  const RotatedCode code(d, RotatedMemory::Z);
  std::size_t weight2_x = 0, weight2_z = 0, weight4 = 0;
  for (const auto& p : code.plaquettes()) {
    if (p.data.size() == 4) {
      ++weight4;
    } else {
      ASSERT_EQ(p.data.size(), 2u);
      (p.x_type ? weight2_x : weight2_z) += 1;
      // Boundary rule: weight-2 X faces pair horizontally adjacent data
      // on the top/bottom rows; weight-2 Z faces pair vertically adjacent
      // data on the left/right columns.
      const int a = static_cast<int>(p.data[0]);
      const int b = static_cast<int>(p.data[1]);
      if (p.x_type) {
        EXPECT_EQ(b - a, 1) << "X boundary face must be horizontal";
        const int row = a / d;
        EXPECT_TRUE(row == 0 || row == d - 1);
      } else {
        EXPECT_EQ(b - a, d) << "Z boundary face must be vertical";
        const int col = a % d;
        EXPECT_TRUE(col == 0 || col == d - 1);
      }
    }
  }
  EXPECT_EQ(weight2_x, static_cast<std::size_t>(d - 1));
  EXPECT_EQ(weight2_z, static_cast<std::size_t>(d - 1));
  EXPECT_EQ(weight4,
            static_cast<std::size_t>(d) * static_cast<std::size_t>(d) - 1 -
                2 * static_cast<std::size_t>(d - 1));
}

TEST_P(RotatedStructure, StabilizerGroupCommutes) {
  const int d = GetParam();
  const RotatedCode code(d, RotatedMemory::Z);
  const auto n = static_cast<std::size_t>(d) * static_cast<std::size_t>(d);
  std::vector<PauliString> group;
  for (const auto& p : code.plaquettes())
    group.push_back(plaquette_pauli(p, n));
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = i + 1; j < group.size(); ++j)
      ASSERT_TRUE(group[i].commutes_with(group[j]))
          << "plaquettes " << i << " and " << j;
}

TEST_P(RotatedStructure, LogicalsCommuteWithGroupAnticommuteWithEachOther) {
  const int d = GetParam();
  const RotatedCode mem_z(d, RotatedMemory::Z);
  const RotatedCode mem_x(d, RotatedMemory::X);
  const auto n = static_cast<std::size_t>(d) * static_cast<std::size_t>(d);

  PauliString logical_x(n);  // applied operator of the memory-Z experiment
  for (std::uint32_t q : mem_z.logical_op_support())
    logical_x.set_pauli(q, 1);
  PauliString logical_z(n);  // applied operator of the memory-X experiment
  for (std::uint32_t q : mem_x.logical_op_support())
    logical_z.set_pauli(q, 2);
  EXPECT_EQ(mem_z.logical_op_support().size(), static_cast<std::size_t>(d));
  EXPECT_EQ(mem_x.logical_op_support().size(), static_cast<std::size_t>(d));
  EXPECT_FALSE(logical_x.commutes_with(logical_z));

  for (const auto& p : mem_z.plaquettes()) {
    const PauliString sp = plaquette_pauli(p, n);
    EXPECT_TRUE(sp.commutes_with(logical_x)) << "plaquette vs X_L";
    EXPECT_TRUE(sp.commutes_with(logical_z)) << "plaquette vs Z_L";
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, RotatedStructure,
                         ::testing::Values(3, 5, 7, 11));

TEST(RotatedCodeTest, RejectsBadDistances) {
  EXPECT_THROW(RotatedCode(2, RotatedMemory::Z), InvalidArgument);
  EXPECT_THROW(RotatedCode(1, RotatedMemory::Z), InvalidArgument);
  EXPECT_THROW(RotatedCode(4, RotatedMemory::X), InvalidArgument);
  EXPECT_THROW(make_code(CodeFamily::ROTATED_MEMORY_Z, 3, 5),
               InvalidArgument);
}

TEST(RotatedCodeTest, FactoryAndNames) {
  const auto mx = make_code(CodeFamily::ROTATED_MEMORY_X, 5, 5);
  const auto mz = make_code(CodeFamily::ROTATED_MEMORY_Z, 5, 5);
  EXPECT_EQ(mx->name(), "rotated-memx-5");
  EXPECT_EQ(mz->name(), "rotated-memz-5");
  EXPECT_EQ(mx->distance(), (std::pair{5, 5}));
  EXPECT_EQ(mx->num_qubits(), 49u);
}

// Every code circuit must be "clean" at zero noise: all detectors zero
// and the observable reading |1> (the applied logical flip).
void expect_noiseless_clean(const SurfaceCode& code, std::size_t rounds) {
  const Circuit c = code.build(rounds);
  const DetectorSet ds = DetectorSet::compile(c);
  TableauSimulator sim(c);
  const BitVec ref = sim.reference_sample();

  bool obs = false;
  for (std::size_t r : ds.observable_mask(0).set_bits()) obs ^= ref.get(r);
  EXPECT_TRUE(obs) << code.name() << ": noiseless readout must be |1>";

  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const BitVec sample = sim.sample(rng);
    EXPECT_TRUE(ds.detector_values(sample, ref).none())
        << code.name() << " trial " << trial;
    EXPECT_EQ(ds.observable_values(sample, ref), 0u);
  }
}

TEST(RotatedCodeTest, NoiselessCleanBothMemories) {
  for (const int d : {3, 5}) {
    expect_noiseless_clean(RotatedCode(d, RotatedMemory::Z), 2);
    expect_noiseless_clean(RotatedCode(d, RotatedMemory::X), 2);
  }
  expect_noiseless_clean(RotatedCode(3, RotatedMemory::Z), 4);
  expect_noiseless_clean(RotatedCode(3, RotatedMemory::X), 4);
}

TEST(RotatedCodeTest, DetectorCount) {
  const RotatedCode code(3, RotatedMemory::Z);
  // Round 1: the 4 Z-plaquettes; round 2: all 8; final: 4 Z-plaquette
  // reconstructions (no ancilla-consistency detector — no ancilla).
  EXPECT_EQ(code.build(2).num_detectors(), 4u + 8u + 4u);
  EXPECT_EQ(code.build(3).num_detectors(), 4u + 8u + 8u + 4u);
  EXPECT_EQ(code.build(2).num_observables(), 1u);
  const RotatedCode mem_x(3, RotatedMemory::X);
  EXPECT_EQ(mem_x.build(2).num_detectors(), 4u + 8u + 4u);
}

TEST(RotatedCodeTest, NativeGraphMatchesPlaquetteAdjacency) {
  const RotatedCode code(5, RotatedMemory::Z);
  const Graph g = native_graph_for(code);
  EXPECT_EQ(g.num_nodes(), code.num_qubits());
  EXPECT_TRUE(g.is_connected());
  // Exactly the syndrome-data couplings: one edge per (plaquette, corner).
  std::size_t expected = 0;
  for (const auto& p : code.plaquettes()) {
    expected += p.data.size();
    for (std::uint32_t dq : p.data) EXPECT_TRUE(g.has_edge(p.syndrome, dq));
  }
  EXPECT_EQ(g.num_edges(), expected);
}

// ---------------------------------------------------------------------------
// Golden logical-error-rate fixtures (full pipeline, native architecture).
// The counts are a pure function of (configuration, seed) by the engine's
// determinism contract; a change here means sampled physics changed and
// must be understood, not re-pinned blindly.
// ---------------------------------------------------------------------------

EngineOptions golden_options() {
  EngineOptions opts;
  opts.shots_per_chunk = 256;
  opts.layout = LayoutStrategy::TRIVIAL;  // native arch: identity is perfect
  return opts;
}

TEST(RotatedGolden, IntrinsicMemoryZ) {
  const RotatedCode code(3, RotatedMemory::Z);
  InjectionEngine engine(code, native_graph_for(code), golden_options());
  // 9 data + 8 syndromes = 17 qubits: single-word compact engine.
  EXPECT_EQ(engine.replay_engine(), "compact");
  const Proportion res = engine.run_intrinsic(2000, 7);
  EXPECT_EQ(res.trials, 2000u);
  EXPECT_EQ(res.successes, 57u);
}

TEST(RotatedGolden, IntrinsicMemoryX) {
  const RotatedCode code(3, RotatedMemory::X);
  InjectionEngine engine(code, native_graph_for(code), golden_options());
  const Proportion res = engine.run_intrinsic(2000, 7);
  // Higher than memory-Z: the basis-change H layers add noise locations
  // at the most exposed instants (just after init, just before readout).
  EXPECT_EQ(res.successes, 131u);
}

TEST(RotatedGolden, RadiationStrikeMemoryZ) {
  const RotatedCode code(3, RotatedMemory::Z);
  InjectionEngine engine(code, native_graph_for(code), golden_options());
  const Proportion res = engine.run_radiation_at(4, 1.0, true, 1000, 11);
  EXPECT_EQ(res.trials, 1000u);
  // Golden under sampling schema v3 (salted residual replay streams).
  EXPECT_EQ(res.successes, 439u);
  // A direct strike must hurt much more than intrinsic noise alone.
  EXPECT_GT(res.rate(), 0.02);
}

TEST(RotatedGolden, WideEngineAtD5) {
  // d = 5 is 49 qubits: the first rotated size carried by the word-sliced
  // engine (W = ceil(98/64) = 2 column words).
  const RotatedCode code(5, RotatedMemory::Z);
  InjectionEngine engine(code, native_graph_for(code), golden_options());
  EXPECT_EQ(engine.replay_engine(), "compact:w2");
}

}  // namespace
}  // namespace radsurf
