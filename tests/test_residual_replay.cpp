// Conditioned residual replay: statistical and accounting contracts.
//
// The AUTO sampling path hands frame-inexpressible shots to a batched
// exact replay that is *conditioned* on the observed herald signature.
// An unconditioned re-run would mix P(record | no random-site herald)
// with unconditional samples — a bias maximized at intermediate residual
// fractions, which is exactly where these z-tests sit (f ~ 0.26..0.54 on
// the single-qubit reset sweeps below).  Residual shots sharing a herald
// signature are further *promoted*: one conditioned tableau walk per
// distinct signature plus destabilizer-injected frame replays for the
// rest of the group (see FrameSimulator::run_group), so the per-shot
// exact walk count (residual_fraction) undercounts the handed-off mass;
// promotion_stats() carries the full split.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"
#include "util/stats.hpp"

namespace radsurf {
namespace {

EngineOptions path_options(SamplingPath path) {
  EngineOptions opts;
  opts.sampling_path = path;
  return opts;
}

std::vector<double> single_qubit_probs(const Graph& arch, std::uint32_t q,
                                       double p) {
  std::vector<double> probs(arch.num_nodes(), 0.0);
  probs[q] = p;
  return probs;
}

/// AUTO (frame + conditioned replay) vs EXACT (per-shot tableau) on a
/// mid-residual-fraction reset workload.
void expect_paths_agree_on_reset_probs(double p, std::size_t shots,
                                       double min_f, double max_f) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  InjectionEngine auto_engine(code, arch, path_options(SamplingPath::AUTO));
  InjectionEngine exact_engine(code, arch,
                               path_options(SamplingPath::EXACT));
  const auto probs = single_qubit_probs(arch, 2, p);
  const Proportion pa = auto_engine.run_reset_probs(probs, shots, 77);
  const Proportion pe = exact_engine.run_reset_probs(probs, shots, 78);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "AUTO " << pa.rate() << " vs EXACT " << pe.rate() << " at p=" << p;
  // The scenario must actually exercise the mixed frame/replay regime.
  // Residual shots are now split between per-shot exact walks
  // (residual_fraction) and herald-group frame promotion; the residual
  // *mass* handed off by the frame phase is their sum.
  const PromotionStats ps = auto_engine.promotion_stats();
  const double handed_off =
      static_cast<double>(ps.promoted_shots + ps.exact_replays) / shots;
  EXPECT_GE(handed_off, min_f);
  EXPECT_LE(handed_off, max_f);
  EXPECT_GT(ps.groups, 0u);
  EXPECT_GT(ps.promoted_shots, 0u);
  EXPECT_DOUBLE_EQ(exact_engine.residual_fraction(), 1.0);
}

TEST(ResidualReplay, AutoMatchesExactAtModerateResidualFraction) {
  expect_paths_agree_on_reset_probs(0.02, 6000, 0.1, 0.5);
}

TEST(ResidualReplay, AutoMatchesExactNearBreakEvenResidualFraction) {
  expect_paths_agree_on_reset_probs(0.05, 6000, 0.35, 0.75);
}

TEST(ResidualReplay, FrameSkippedPathMatchesExactAtFullResidual) {
  // Full-blast strike: expected residual ~1, AUTO takes the frame-skipped
  // batched replay branch outright.
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  InjectionEngine auto_engine(code, arch, path_options(SamplingPath::AUTO));
  InjectionEngine exact_engine(code, arch,
                               path_options(SamplingPath::EXACT));
  const Proportion pa = auto_engine.run_radiation_at(2, 1.0, true, 4000, 5);
  const Proportion pe = exact_engine.run_radiation_at(2, 1.0, true, 4000, 6);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "AUTO " << pa.rate() << " vs EXACT " << pe.rate();
  EXPECT_DOUBLE_EQ(auto_engine.residual_fraction(), 1.0);
}

TEST(ResidualReplay, ThresholdKnobSelectsEquivalentPipelines) {
  // Never-skip (frame + conditioned replay) and always-skip (batched
  // replay for every shot) are different code paths over the same
  // distribution.
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  EngineOptions never = path_options(SamplingPath::AUTO);
  never.residual_fraction_threshold = 2.0;
  EngineOptions always = path_options(SamplingPath::AUTO);
  always.residual_fraction_threshold = 0.0;
  InjectionEngine frame_engine(code, arch, never);
  InjectionEngine replay_engine(code, arch, always);
  const auto probs = single_qubit_probs(arch, 2, 0.05);
  const Proportion pf = frame_engine.run_reset_probs(probs, 6000, 91);
  const Proportion pr = replay_engine.run_reset_probs(probs, 6000, 92);
  EXPECT_LT(std::abs(two_proportion_z(pf, pr)), 4.0)
      << "frame " << pf.rate() << " vs replay " << pr.rate();
  // Every always-skip shot goes through the replay machinery — either a
  // promoted herald group or a per-shot exact walk.
  const PromotionStats pr_stats = replay_engine.promotion_stats();
  EXPECT_EQ(pr_stats.promoted_shots + pr_stats.exact_replays, 6000u);
  const PromotionStats pf_stats = frame_engine.promotion_stats();
  EXPECT_LT(pf_stats.promoted_shots + pf_stats.exact_replays, 6000u);
}

TEST(ResidualReplay, DeterministicAcrossRepeatedRuns) {
  // The three-phase pipeline (frame chunks, signature grouping, replay
  // chunks) must stay a pure function of the seed.
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  InjectionEngine engine(code, arch, path_options(SamplingPath::AUTO));
  const auto probs = single_qubit_probs(arch, 2, 0.05);
  const Proportion a = engine.run_reset_probs(probs, 2000, 31);
  const Proportion b = engine.run_reset_probs(probs, 2000, 31);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trials, b.trials);
}

TEST(ResidualReplay, ErasureReplayPinsStrikeInstant) {
  // Erasure residual shots must replay their strike ordinal; the AUTO and
  // EXACT erasure rates stay statistically identical (xxzz data qubits
  // give reference-random erasure instants, so this exercises the pinned
  // path, unlike the rep-5 erasure suite).
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  InjectionEngine auto_engine(code, arch, path_options(SamplingPath::AUTO));
  InjectionEngine exact_engine(code, arch,
                               path_options(SamplingPath::EXACT));
  const std::vector<std::uint32_t> corrupted{
      auto_engine.active_qubits()[0], auto_engine.active_qubits()[2]};
  const Proportion pa = auto_engine.run_erasure(corrupted, 5000, 101);
  const Proportion pe = exact_engine.run_erasure(corrupted, 5000, 102);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "AUTO " << pa.rate() << " vs EXACT " << pe.rate();
  // Erasure residuals share their strike ordinal, so the whole residual
  // mass promotes into a handful of strike-ordinal groups.
  const PromotionStats ps = auto_engine.promotion_stats();
  EXPECT_GT(ps.promoted_shots + ps.exact_replays, 0u);
  EXPECT_GT(ps.groups, 0u);
}

}  // namespace
}  // namespace radsurf
