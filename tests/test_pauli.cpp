#include "stab/pauli.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(Pauli, FromToString) {
  const auto p = PauliString::from_string("+XIZY");
  EXPECT_EQ(p.num_qubits(), 4u);
  EXPECT_EQ(p.pauli_at(0), 1);  // X
  EXPECT_EQ(p.pauli_at(1), 0);  // I
  EXPECT_EQ(p.pauli_at(2), 2);  // Z
  EXPECT_EQ(p.pauli_at(3), 3);  // Y
  EXPECT_FALSE(p.sign());
  EXPECT_EQ(p.to_string(), "+XIZY");

  const auto m = PauliString::from_string("-ZZ");
  EXPECT_TRUE(m.sign());
  EXPECT_EQ(m.to_string(), "-ZZ");
  EXPECT_THROW(PauliString::from_string("+AB"), InvalidArgument);
}

TEST(Pauli, WeightAndIdentity) {
  EXPECT_TRUE(PauliString::from_string("III").is_identity());
  EXPECT_EQ(PauliString::from_string("XIZ").weight(), 2u);
  EXPECT_EQ(PauliString::from_string("YYY").weight(), 3u);
}

TEST(Pauli, CommutationRules) {
  const auto X = PauliString::from_string("X");
  const auto Y = PauliString::from_string("Y");
  const auto Z = PauliString::from_string("Z");
  EXPECT_FALSE(X.commutes_with(Z));
  EXPECT_FALSE(X.commutes_with(Y));
  EXPECT_FALSE(Y.commutes_with(Z));
  EXPECT_TRUE(X.commutes_with(X));

  // XX vs ZZ: two anticommuting sites -> commute overall.
  EXPECT_TRUE(PauliString::from_string("XX").commutes_with(
      PauliString::from_string("ZZ")));
  EXPECT_FALSE(PauliString::from_string("XI").commutes_with(
      PauliString::from_string("ZI")));
}

TEST(Pauli, MultiplicationPhases) {
  // X * Y = iZ -> imaginary, must be rejected for anticommuting operands.
  auto x = PauliString::from_string("X");
  EXPECT_THROW(x *= PauliString::from_string("Y"), Error);

  // Commuting products are fine: XX * ZZ = -YY.
  auto xx = PauliString::from_string("XX");
  xx *= PauliString::from_string("ZZ");
  EXPECT_EQ(xx.to_string(), "-YY");

  auto zz = PauliString::from_string("ZZ");
  zz *= PauliString::from_string("ZZ");
  EXPECT_EQ(zz.to_string(), "+II");
}

TEST(Pauli, MulPhaseFunction) {
  // g(P1, P2): exponent of i in P1*P2.
  // X*Y = iZ.
  EXPECT_EQ(pauli_mul_phase(true, false, true, true), 1);
  // Y*X = -iZ.
  EXPECT_EQ(pauli_mul_phase(true, true, true, false), -1);
  // Y*Z = iX.
  EXPECT_EQ(pauli_mul_phase(true, true, false, true), 1);
  // Z*X = iY.
  EXPECT_EQ(pauli_mul_phase(false, true, true, false), 1);
  // X*Z = -iY.
  EXPECT_EQ(pauli_mul_phase(true, false, false, true), -1);
  // Identity / equal operands contribute nothing.
  EXPECT_EQ(pauli_mul_phase(false, false, true, true), 0);
  EXPECT_EQ(pauli_mul_phase(true, false, true, false), 0);
}

struct ConjCase {
  Gate gate;
  const char* in;
  const char* out;
};

class PauliConjugation : public ::testing::TestWithParam<ConjCase> {};

TEST_P(PauliConjugation, SingleQubitRules) {
  const auto& [gate, in, out] = GetParam();
  auto p = PauliString::from_string(in);
  const std::uint32_t targets[] = {0};
  p.apply_gate(gate, targets);
  EXPECT_EQ(p.to_string(), out);
}

INSTANTIATE_TEST_SUITE_P(
    KnownTables, PauliConjugation,
    ::testing::Values(
        // H: X<->Z, Y -> -Y.
        ConjCase{Gate::H, "+X", "+Z"}, ConjCase{Gate::H, "+Z", "+X"},
        ConjCase{Gate::H, "+Y", "-Y"}, ConjCase{Gate::H, "-X", "-Z"},
        // S: X -> Y, Y -> -X, Z -> Z.
        ConjCase{Gate::S, "+X", "+Y"}, ConjCase{Gate::S, "+Y", "-X"},
        ConjCase{Gate::S, "+Z", "+Z"},
        // S_DAG: X -> -Y, Y -> X.
        ConjCase{Gate::S_DAG, "+X", "-Y"}, ConjCase{Gate::S_DAG, "+Y", "+X"},
        ConjCase{Gate::S_DAG, "+Z", "+Z"},
        // Paulis conjugate each other with signs.
        ConjCase{Gate::X, "+Z", "-Z"}, ConjCase{Gate::X, "+Y", "-Y"},
        ConjCase{Gate::X, "+X", "+X"}, ConjCase{Gate::Z, "+X", "-X"},
        ConjCase{Gate::Z, "+Z", "+Z"}, ConjCase{Gate::Y, "+X", "-X"},
        ConjCase{Gate::Y, "+Z", "-Z"}, ConjCase{Gate::Y, "+Y", "+Y"},
        ConjCase{Gate::I, "+Y", "+Y"}));

struct Conj2Case {
  Gate gate;
  const char* in;
  const char* out;
};

class PauliConjugation2Q : public ::testing::TestWithParam<Conj2Case> {};

TEST_P(PauliConjugation2Q, TwoQubitRules) {
  const auto& [gate, in, out] = GetParam();
  auto p = PauliString::from_string(in);
  const std::uint32_t targets[] = {0, 1};
  p.apply_gate(gate, targets);
  EXPECT_EQ(p.to_string(), out);
}

INSTANTIATE_TEST_SUITE_P(
    KnownTables, PauliConjugation2Q,
    ::testing::Values(
        // CX (control 0, target 1): XI->XX, IX->IX, ZI->ZI, IZ->ZZ.
        Conj2Case{Gate::CX, "+XI", "+XX"}, Conj2Case{Gate::CX, "+IX", "+IX"},
        Conj2Case{Gate::CX, "+ZI", "+ZI"}, Conj2Case{Gate::CX, "+IZ", "+ZZ"},
        Conj2Case{Gate::CX, "+XX", "+XI"}, Conj2Case{Gate::CX, "+ZZ", "+IZ"},
        Conj2Case{Gate::CX, "+YI", "+YX"}, Conj2Case{Gate::CX, "+IY", "+ZY"},
        // CZ: XI->XZ, IX->ZX, ZI->ZI, IZ->IZ.
        Conj2Case{Gate::CZ, "+XI", "+XZ"}, Conj2Case{Gate::CZ, "+IX", "+ZX"},
        Conj2Case{Gate::CZ, "+ZI", "+ZI"}, Conj2Case{Gate::CZ, "+IZ", "+IZ"},
        // SWAP exchanges.
        Conj2Case{Gate::SWAP, "+XZ", "+ZX"},
        Conj2Case{Gate::SWAP, "+YI", "+IY"}));

TEST(Pauli, ConjugationPreservesCommutation) {
  // Clifford conjugation is an automorphism: commutation relations are
  // invariant under any gate applied to both operands.
  const char* strings[] = {"+XIZ", "+ZZX", "+YXI", "+IYZ", "+XXX", "+ZIZ"};
  const Gate gates[] = {Gate::H, Gate::S, Gate::CX, Gate::CZ, Gate::SWAP};
  for (const char* sa : strings) {
    for (const char* sb : strings) {
      for (Gate g : gates) {
        auto a = PauliString::from_string(sa);
        auto b = PauliString::from_string(sb);
        const bool before = a.commutes_with(b);
        std::vector<std::uint32_t> targets =
            gate_info(g).is_two_qubit ? std::vector<std::uint32_t>{0, 2}
                                      : std::vector<std::uint32_t>{1};
        a.apply_gate(g, targets);
        b.apply_gate(g, targets);
        EXPECT_EQ(a.commutes_with(b), before)
            << sa << " vs " << sb << " under " << gate_info(g).name;
      }
    }
  }
}

TEST(Pauli, GateInverseRoundTrip) {
  // Applying a gate then its inverse restores the operator.
  const char* strings[] = {"+X", "+Y", "+Z", "-X", "-Y", "-Z"};
  for (const char* s : strings) {
    auto p = PauliString::from_string(s);
    const std::uint32_t t[] = {0};
    p.apply_gate(Gate::S, t);
    p.apply_gate(Gate::S_DAG, t);
    EXPECT_EQ(p.to_string(), s);
    p.apply_gate(Gate::H, t);
    p.apply_gate(Gate::H, t);
    EXPECT_EQ(p.to_string(), s);
  }
}

TEST(Pauli, NonUnitaryGateRejected) {
  auto p = PauliString::from_string("+X");
  const std::uint32_t t[] = {0};
  EXPECT_THROW(p.apply_gate(Gate::M, t), InvalidArgument);
  EXPECT_THROW(p.apply_gate(Gate::DEPOLARIZE1, t), InvalidArgument);
}

}  // namespace
}  // namespace radsurf
