// Golden regression tests for the deterministic decay-model tables.
//
// fig3_temporal_decay and fig4_spatial_decay are pure functions of the
// RadiationModel (no shots, no RNG); their tables are pinned here as exact
// fixtures so a refactor of the decay models — or of the Table formatting
// they are reported through — cannot silently drift the paper's Eq. 5/6
// reproductions.  If a change to these tables is *intentional*, regenerate
// the fixtures from the new output and say so in the commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/experiments.hpp"

namespace radsurf {
namespace {

// Exact CSV of fig3_temporal_decay() with the paper-default model
// (gamma = 10, ns = 10).
constexpr const char* kFig3Csv =
    R"(t,T(t),T^(t) (step)
0.00,1.000000,1.000000
0.02,0.818731,1.000000
0.04,0.670320,1.000000
0.06,0.548812,1.000000
0.08,0.449329,1.000000
0.10,0.367879,0.367879
0.12,0.301194,0.367879
0.14,0.246597,0.367879
0.16,0.201897,0.367879
0.18,0.165299,0.367879
0.20,0.135335,0.135335
0.22,0.110803,0.135335
0.24,0.090718,0.135335
0.26,0.074274,0.135335
0.28,0.060810,0.135335
0.30,0.049787,0.049787
0.32,0.040762,0.049787
0.34,0.033373,0.049787
0.36,0.027324,0.049787
0.38,0.022371,0.049787
0.40,0.018316,0.018316
0.42,0.014996,0.018316
0.44,0.012277,0.018316
0.46,0.010052,0.018316
0.48,0.008230,0.018316
0.50,0.006738,0.006738
0.52,0.005517,0.006738
0.54,0.004517,0.006738
0.56,0.003698,0.006738
0.58,0.003028,0.006738
0.60,0.002479,0.002479
0.62,0.002029,0.002479
0.64,0.001662,0.002479
0.66,0.001360,0.002479
0.68,0.001114,0.002479
0.70,0.000912,0.000912
0.72,0.000747,0.000912
0.74,0.000611,0.000912
0.76,0.000500,0.000912
0.78,0.000410,0.000912
0.80,0.000335,0.000335
0.82,0.000275,0.000335
0.84,0.000225,0.000335
0.86,0.000184,0.000335
0.88,0.000151,0.000335
0.90,0.000123,0.000123
0.92,0.000101,0.000123
0.94,0.000083,0.000123
0.96,0.000068,0.000123
0.98,0.000055,0.000123
1.00,0.000045,0.000123
)";

// Exact CSV of fig4_spatial_decay({}, /*extent=*/6) (n = 1).
constexpr const char* kFig4Csv =
    R"(dx,dy,manhattan d,S(d)
-6,-6,12,0.005917
-4,-6,10,0.008264
-2,-6,8,0.012346
0,-6,6,0.020408
2,-6,8,0.012346
4,-6,10,0.008264
6,-6,12,0.005917
-6,-4,10,0.008264
-4,-4,8,0.012346
-2,-4,6,0.020408
0,-4,4,0.040000
2,-4,6,0.020408
4,-4,8,0.012346
6,-4,10,0.008264
-6,-2,8,0.012346
-4,-2,6,0.020408
-2,-2,4,0.040000
0,-2,2,0.111111
2,-2,4,0.040000
4,-2,6,0.020408
6,-2,8,0.012346
-6,0,6,0.020408
-4,0,4,0.040000
-2,0,2,0.111111
0,0,0,1.000000
2,0,2,0.111111
4,0,4,0.040000
6,0,6,0.020408
-6,2,8,0.012346
-4,2,6,0.020408
-2,2,4,0.040000
0,2,2,0.111111
2,2,4,0.040000
4,2,6,0.020408
6,2,8,0.012346
-6,4,10,0.008264
-4,4,8,0.012346
-2,4,6,0.020408
0,4,4,0.040000
2,4,6,0.020408
4,4,8,0.012346
6,4,10,0.008264
-6,6,12,0.005917
-4,6,10,0.008264
-2,6,8,0.012346
0,6,6,0.020408
2,6,8,0.012346
4,6,10,0.008264
6,6,12,0.005917
)";

TEST(GoldenFigures, Fig3TemporalDecayTableExact) {
  const ExperimentReport report = fig3_temporal_decay();
  EXPECT_EQ(report.table.to_csv(), kFig3Csv);
}

TEST(GoldenFigures, Fig3EndpointNotesPinned) {
  const ExperimentReport report = fig3_temporal_decay();
  ASSERT_EQ(report.notes.size(), 2u);
  EXPECT_EQ(report.notes[0],
            "T(0) = 1 (100% injection probability at strike)");
  EXPECT_EQ(report.notes[1], "T(1) = 0.000045 (fault extinguished)");
}

TEST(GoldenFigures, Fig4SpatialDecayTableExact) {
  const ExperimentReport report = fig4_spatial_decay({}, /*extent=*/6);
  EXPECT_EQ(report.table.to_csv(), kFig4Csv);
}

TEST(GoldenFigures, Fig4DefaultExtentSpotChecks) {
  // The default extent-10 table is large; pin its shape and corners instead
  // of the full dump (the extent-6 fixture already pins every value the
  // corners interpolate).
  const ExperimentReport report = fig4_spatial_decay();
  const std::string csv = report.table.to_csv();
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')),
            1 + 11 * 11);  // header + (2*10/2+1)^2 rows
  EXPECT_NE(csv.find("\n-10,-10,20,0.002268\n"), std::string::npos);
  EXPECT_NE(csv.find("\n0,0,0,1.000000\n"), std::string::npos);
  EXPECT_NE(csv.find("\n10,10,20,0.002268\n"), std::string::npos);
}

TEST(GoldenFigures, NonDefaultModelStillConsistent) {
  // A non-default model must track its own analytic values (guards against
  // fixtures accidentally hard-wiring the defaults inside the drivers).
  RadiationModel model;
  model.gamma = 5.0;
  model.ns = 4;
  const ExperimentReport report = fig3_temporal_decay(model);
  // Row at t = 0.50: T = exp(-2.5), step sample floor(0.5 * 4)/4 = 0.50.
  EXPECT_NE(report.table.to_csv().find("0.50,0.082085,0.082085"),
            std::string::npos);
}

}  // namespace
}  // namespace radsurf
