#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace radsurf {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Roughly uniform: each bucket near 2000.
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BernoulliRates) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.1);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.1, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(42);
  Rng b = a;
  b.jump();
  // Streams should not collide over a modest window.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(b.next()));
}

TEST(Rng, StreamKEqualsKJumps) {
  Rng base(2024);
  Rng manual = base;
  manual.jump();
  manual.jump();
  manual.jump();
  Rng stream = base.stream(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(manual.next(), stream.next());
}

TEST(Rng, StreamZeroIsIdentity) {
  Rng base(77);
  Rng s = base.stream(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(base.next(), s.next());
}

TEST(Rng, ReseedResets) {
  Rng rng(5);
  const auto first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(11);
  std::uniform_int_distribution<int> dist(0, 5);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace radsurf
