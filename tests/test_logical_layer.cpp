#include "core/logical_layer.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(LogicalGhz, CircuitShape) {
  const Circuit c = logical_ghz_circuit(5);
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.num_measurements(), 5u);
  EXPECT_EQ(c.num_observables(), 5u);  // 4 pairwise + global
  EXPECT_THROW(logical_ghz_circuit(1), InvalidArgument);
}

TEST(LogicalFaults, InstrumentationPlacesErrors) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  LogicalFaultModel model;
  model.x_rate = {0.1, 0.0};
  model.z_rate = {0.0, 0.2};
  const Circuit noisy = instrument_logical_faults(c, model);
  // H, X_ERROR(q0), CX, X_ERROR(q0), Z_ERROR(q1).
  ASSERT_EQ(noisy.size(), 5u);
  EXPECT_EQ(noisy.instructions()[1].gate, Gate::X_ERROR);
  EXPECT_EQ(noisy.instructions()[3].gate, Gate::X_ERROR);
  EXPECT_EQ(noisy.instructions()[4].gate, Gate::Z_ERROR);
  EXPECT_DOUBLE_EQ(noisy.instructions()[4].args[0], 0.2);
}

TEST(LogicalFaults, ZeroRatesIdentity) {
  const Circuit ghz = logical_ghz_circuit(3);
  const Circuit noisy = instrument_logical_faults(ghz, {});
  EXPECT_EQ(noisy, ghz);
}

TEST(LogicalFaults, BadRateRejected) {
  Circuit c;
  c.h(0);
  LogicalFaultModel model;
  model.x_rate = {1.5};
  EXPECT_THROW(instrument_logical_faults(c, model), InvalidArgument);
}

TEST(LogicalCorruption, CleanCircuitNeverCorrupted) {
  const Circuit ghz = logical_ghz_circuit(4);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(logical_corruption_rate(ghz, 500, rng), 0.0);
}

TEST(LogicalCorruption, CertainFaultAlwaysCorrupts) {
  const Circuit ghz = logical_ghz_circuit(3);
  LogicalFaultModel model;
  model.x_rate = {0.0, 1.0, 0.0};  // struck patch flips at every gate
  Rng rng(2);
  const double rate = logical_corruption_rate(
      instrument_logical_faults(ghz, model), 400, rng);
  // Patch 1 receives two CX touches -> flips cancel or not depending on
  // position, but a pairwise parity is essentially always broken.
  EXPECT_GT(rate, 0.9);
}

TEST(LogicalCorruption, MonotoneInFaultRate) {
  const Circuit ghz = logical_ghz_circuit(5);
  Rng rng(3);
  double last = -1.0;
  for (double p : {0.0, 0.05, 0.2, 0.5}) {
    LogicalFaultModel model;
    model.x_rate.assign(5, p);
    const double rate = logical_corruption_rate(
        instrument_logical_faults(ghz, model), 3000, rng);
    EXPECT_GT(rate, last - 0.05) << "p=" << p;  // statistical slack
    last = rate;
  }
  EXPECT_GT(last, 0.5);
}

TEST(LogicalCorruption, SingleStruckPatchBreaksSharedParities) {
  // Faults on one patch corrupt only the parities that involve it when
  // the fault lands after the entangling gates -- the corruption must be
  // strictly between 0 and the all-patches case.
  const Circuit ghz = logical_ghz_circuit(4);
  Rng rng(4);
  LogicalFaultModel one;
  one.x_rate = {0.0, 0.0, 0.3, 0.0};
  LogicalFaultModel all;
  all.x_rate.assign(4, 0.3);
  const double one_rate = logical_corruption_rate(
      instrument_logical_faults(ghz, one), 4000, rng);
  const double all_rate = logical_corruption_rate(
      instrument_logical_faults(ghz, all), 4000, rng);
  EXPECT_GT(one_rate, 0.05);
  EXPECT_LT(one_rate, all_rate);
}

TEST(LogicalCorruption, RequiresObservables) {
  Circuit c;
  c.h(0);
  c.m(0);
  Rng rng(5);
  EXPECT_THROW(logical_corruption_rate(c, 10, rng), InvalidArgument);
}

}  // namespace
}  // namespace radsurf
