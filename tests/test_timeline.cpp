// Radiation timelines (noise/timeline.hpp) and the run_timeline campaign:
// Poisson arrival statistics, schedule composition arithmetic, round-scoped
// instrumentation, and the statistical cross-engine validation suite — the
// frame fast path (SamplingPath::AUTO) and the exact tableau baseline
// (SamplingPath::EXACT) must produce statistically indistinguishable
// logical error rates on identical timeline campaigns (two-proportion
// z-test, |z| < 4), and syndrome-memoized decoding must be bit-for-bit
// equivalent to uncached decoding.
#include "noise/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/sliding_window.hpp"
#include "inject/campaign.hpp"
#include "util/stats.hpp"

namespace radsurf {
namespace {

TEST(PoissonSample, MeanMatchesRate) {
  Rng rng(11);
  for (double rate : {0.05, 0.5, 2.0}) {
    const std::size_t draws = 20000;
    std::size_t total = 0;
    for (std::size_t i = 0; i < draws; ++i) total += poisson_sample(rate, rng);
    const double mean = static_cast<double>(total) / draws;
    // Poisson mean == rate; 5 sigma of the sample mean.
    EXPECT_NEAR(mean, rate, 5.0 * std::sqrt(rate / draws)) << "rate " << rate;
  }
  EXPECT_EQ(poisson_sample(0.0, rng), 0u);
}

TEST(RadiationTimeline, SampleRespectsRateAndRoots) {
  RadiationTimeline timeline({}, {.events_per_round = 0.2,
                                  .burst_multiplicity = 1,
                                  .duration_rounds = 5});
  const std::vector<std::uint32_t> roots = {3, 5, 9};
  Rng rng(7);
  const std::size_t rounds = 5000;
  const auto events = timeline.sample(rounds, roots, rng);
  const double per_round = static_cast<double>(events.size()) / rounds;
  EXPECT_NEAR(per_round, 0.2, 0.03);
  for (const RadiationEvent& e : events) {
    EXPECT_LT(e.round, rounds);
    EXPECT_TRUE(std::find(roots.begin(), roots.end(), e.root) != roots.end());
    EXPECT_DOUBLE_EQ(e.intensity, 1.0);
  }
}

TEST(RadiationTimeline, BurstMultiplicityStrikesDistinctRoots) {
  RadiationTimeline timeline({}, {.events_per_round = 0.1,
                                  .burst_multiplicity = 3,
                                  .duration_rounds = 5});
  const std::vector<std::uint32_t> roots = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(13);
  const auto events = timeline.sample(2000, roots, rng);
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.size() % 3, 0u);
  for (std::size_t i = 0; i < events.size(); i += 3) {
    // Each shower: one round, three distinct impact points.
    EXPECT_EQ(events[i].round, events[i + 1].round);
    EXPECT_EQ(events[i].round, events[i + 2].round);
    EXPECT_NE(events[i].root, events[i + 1].root);
    EXPECT_NE(events[i].root, events[i + 2].root);
    EXPECT_NE(events[i + 1].root, events[i + 2].root);
  }
}

TEST(RadiationTimeline, ScheduleComposesTemporalAndSpatialDecay) {
  const RadiationModel model{};  // gamma = 10, n = 1
  TimelineOptions opts;
  opts.duration_rounds = 4;
  opts.intensity = 0.8;
  const RadiationTimeline timeline(model, opts);
  const Graph line = make_linear(5);

  const std::vector<RadiationEvent> events = {{2, 1, 0.8}};
  const auto probs = timeline.schedule(line, events, 10);
  ASSERT_EQ(probs.size(), 10u);

  // Peak at the root on the arrival round; T(dr/4) afterwards.  The
  // independent-source combination 1 - (1 - 0)(1 - p) reconstructs p only
  // to rounding, hence the 1-ulp-scale tolerance.
  EXPECT_DOUBLE_EQ(probs[2][1], 0.8);
  EXPECT_NEAR(probs[3][1], 0.8 * model.temporal(0.25), 1e-15);
  EXPECT_NEAR(probs[5][1], 0.8 * model.temporal(0.75), 1e-15);
  // Extinguished after duration_rounds; silent before arrival.
  EXPECT_DOUBLE_EQ(probs[6][1], 0.0);
  EXPECT_DOUBLE_EQ(probs[1][1], 0.0);
  // Spatial decay S(d) over the line.
  EXPECT_NEAR(probs[2][2], 0.8 * model.spatial(1), 1e-15);
  EXPECT_NEAR(probs[2][4], 0.8 * model.spatial(3), 1e-15);
}

TEST(RadiationTimeline, OverlappingEventsCombineAsIndependentSources) {
  const RadiationModel model{};
  TimelineOptions opts;
  opts.duration_rounds = 3;
  opts.spread = false;
  const RadiationTimeline timeline(model, opts);
  const Graph line = make_linear(3);

  const std::vector<RadiationEvent> events = {{0, 1, 0.5}, {1, 1, 0.5}};
  const auto probs = timeline.schedule(line, events, 4);
  // Round 1 sees event 0 decayed one round and event 1 at peak.
  const double p0 = 0.5 * model.temporal(1.0 / 3.0);
  const double p1 = 0.5;
  EXPECT_DOUBLE_EQ(probs[1][1], 1.0 - (1.0 - p0) * (1.0 - p1));
  // Unstruck qubits stay silent with spread off.
  EXPECT_DOUBLE_EQ(probs[1][0], 0.0);
  EXPECT_DOUBLE_EQ(probs[1][2], 0.0);
}

TEST(RadiationTimeline, EventOutsideTimelineRejected) {
  const RadiationTimeline timeline({}, {});
  const Graph line = make_linear(3);
  EXPECT_THROW(timeline.schedule(line, {{7, 0, 1.0}}, 5), InvalidArgument);
}

TEST(InstrumentTimeline, ResetsAreRoundScoped) {
  // Two rounds separated by a TICK; only round 1 has a nonzero field, so
  // only the gate after the TICK grows a RESET_ERROR.
  Circuit c(2);
  c.x(0);
  c.tick();
  c.x(0);
  c.x(1);
  const std::vector<std::vector<double>> schedule = {{0.0, 0.0},
                                                     {0.25, 0.0}};
  const Circuit noisy = instrument_timeline_noise(c, schedule);
  std::size_t resets = 0;
  std::size_t ticks_seen = 0;
  for (const Instruction& ins : noisy.instructions()) {
    if (ins.gate == Gate::TICK) ++ticks_seen;
    if (ins.gate == Gate::RESET_ERROR) {
      ++resets;
      EXPECT_EQ(ticks_seen, 1u);  // after the round boundary
      EXPECT_EQ(ins.targets[0], 0u);
      EXPECT_DOUBLE_EQ(ins.args[0], 0.25);
    }
  }
  EXPECT_EQ(resets, 1u);
}

TEST(InstrumentTimeline, TrailingReadoutUsesLastRound) {
  // Gates after the final TICK (the transversal readout block) take the
  // last round's field.
  Circuit c(1);
  c.x(0);
  c.tick();
  c.x(0);  // readout-block gate, beyond the schedule's rows
  const std::vector<std::vector<double>> schedule = {{0.5}};
  const Circuit noisy = instrument_timeline_noise(c, schedule);
  std::size_t resets = 0;
  for (const Instruction& ins : noisy.instructions())
    if (ins.gate == Gate::RESET_ERROR) ++resets;
  EXPECT_EQ(resets, 2u);
}

TEST(DetectorRounds, EngineMapsDetectorsToRounds) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 4;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const auto& rounds = engine.detector_rounds();
  ASSERT_EQ(rounds.size(), engine.matching_graph().num_detectors());
  // 4 stabilisation rounds x 4 detectors, then 5 readout detectors folded
  // into the last round.
  for (std::size_t d = 0; d < rounds.size(); ++d) {
    if (d < 16)
      EXPECT_EQ(rounds[d], d / 4) << "detector " << d;
    else
      EXPECT_EQ(rounds[d], 3u) << "detector " << d;
  }
}

// --- statistical cross-engine validation ---------------------------------

RadiationTimeline test_timeline(double rate) {
  TimelineOptions opts;
  opts.events_per_round = rate;
  opts.duration_rounds = 6;
  return RadiationTimeline({}, opts);
}

/// AUTO (frame fast path + exact residual) and EXACT (per-shot tableau)
/// must agree on the timeline campaign's logical error rate.
void expect_paths_agree(const SurfaceCode& code, const Graph& arch,
                        std::size_t rounds, std::size_t shots,
                        const SlidingWindowOptions& window) {
  const RadiationTimeline timeline = test_timeline(0.15);

  EngineOptions auto_opts;
  auto_opts.rounds = rounds;
  auto_opts.sampling_path = SamplingPath::AUTO;
  auto_opts.whole_history_decoder = false;
  InjectionEngine auto_engine(code, arch, auto_opts);

  EngineOptions exact_opts = auto_opts;
  exact_opts.sampling_path = SamplingPath::EXACT;
  InjectionEngine exact_engine(code, arch, exact_opts);

  Rng event_rng(99);
  std::vector<RadiationEvent> events;
  while (events.empty())  // deterministic retry until the draw is non-empty
    events = timeline.sample(rounds, auto_engine.active_qubits(), event_rng);

  const Proportion pa =
      auto_engine.run_timeline(timeline, events, shots, 1234, window);
  const Proportion pe =
      exact_engine.run_timeline(timeline, events, shots, 5678, window);
  EXPECT_EQ(pa.trials, shots);
  EXPECT_EQ(pe.trials, shots);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "AUTO " << pa.rate() << " vs EXACT " << pe.rate();
}

TEST(TimelineCrossValidation, AutoVsExactRepetition51) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  expect_paths_agree(code, make_mesh(5, 2), /*rounds=*/10, /*shots=*/4000,
                     {4, 2});
}

TEST(TimelineCrossValidation, AutoVsExactXxzz33) {
  XXZZCode code(3, 3);
  expect_paths_agree(code, make_mesh(5, 4), /*rounds=*/6, /*shots=*/1500,
                     {3, 1});
}

TEST(TimelineCrossValidation, WindowedVsWholeHistoryRates) {
  // Shorter windows are an approximation; on a sparse timeline they must
  // stay statistically indistinguishable from whole-history decoding.
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 12;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const RadiationTimeline timeline = test_timeline(0.1);
  Rng event_rng(3);
  const auto events =
      timeline.sample(12, engine.active_qubits(), event_rng);

  const Proportion windowed =
      engine.run_timeline(timeline, events, 4000, 42, {6, 3});
  const Proportion whole =
      engine.run_timeline(timeline, events, 4000, 42, {12, 0});
  EXPECT_LT(std::abs(two_proportion_z(windowed, whole)), 4.0)
      << "windowed " << windowed.rate() << " vs whole " << whole.rate();
}

TEST(TimelineCampaign, NoEventsWithFullWindowMatchesIntrinsicExactly) {
  // An empty event list leaves the instrumented circuit identical to the
  // intrinsic baseline, and window >= rounds is whole-history MWPM — so
  // run_timeline must reproduce run_intrinsic bit-for-bit.
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 6;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const RadiationTimeline timeline = test_timeline(0.0);

  const Proportion via_timeline =
      engine.run_timeline(timeline, {}, 3000, 777, {6, 0});
  const Proportion via_intrinsic = engine.run_intrinsic(3000, 777);
  EXPECT_EQ(via_timeline.successes, via_intrinsic.successes);
  EXPECT_EQ(via_timeline.trials, via_intrinsic.trials);
}

TEST(TimelineCampaign, CampaignSummaryAggregates) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 8;
  opts.whole_history_decoder = false;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const RadiationTimeline timeline = test_timeline(0.3);

  const TimelineSummary summary =
      engine.run_timeline_campaign(timeline, 3, 200, 9, {4, 2});
  EXPECT_EQ(summary.num_timelines, 3u);
  EXPECT_EQ(summary.errors.trials, 600u);
  EXPECT_EQ(summary.rounds, 8u);
  EXPECT_GT(summary.num_windows, 1u);
  EXPECT_GE(summary.window_decoders, 1u);
  EXPECT_GT(summary.total_events, 0u);
  EXPECT_NEAR(summary.mean_events(),
              static_cast<double>(summary.total_events) / 3.0, 1e-12);
}

TEST(TimelineCampaign, EngineWithoutWholeHistoryDecoderRejectsOtherRuns) {
  RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 4;
  opts.whole_history_decoder = false;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  EXPECT_THROW(engine.run_intrinsic(100, 1), InvalidArgument);
  // run_timeline still works (it brings its own windowed decoder).
  const RadiationTimeline timeline = test_timeline(0.0);
  EXPECT_EQ(engine.run_timeline(timeline, {}, 50, 1, {2, 1}).trials, 50u);
}

// --- syndrome-memoized decoding under the timeline workload --------------

TEST(TimelineDecodeCache, CachedAndUncachedIdenticalAcross10kShots) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions cached_opts;
  cached_opts.rounds = 8;
  cached_opts.decode_cache = true;
  InjectionEngine cached(code, make_mesh(5, 2), cached_opts);

  EngineOptions plain_opts = cached_opts;
  plain_opts.decode_cache = false;
  InjectionEngine plain(code, make_mesh(5, 2), plain_opts);

  const RadiationTimeline timeline = test_timeline(0.2);
  Rng event_rng(21);
  const auto events =
      timeline.sample(8, cached.active_qubits(), event_rng);
  ASSERT_FALSE(events.empty());

  const std::size_t shots = 10000;
  const SlidingWindowOptions window{4, 2};
  const Proportion with_cache =
      cached.run_timeline(timeline, events, shots, 31337, window);
  const Proportion without_cache =
      plain.run_timeline(timeline, events, shots, 31337, window);

  // Identical predictions shot-for-shot => identical error counts.
  EXPECT_EQ(with_cache.successes, without_cache.successes);
  EXPECT_EQ(with_cache.trials, without_cache.trials);

  // The hit-rate counter is exposed and the timeline workload re-hits
  // syndromes (the strike footprint dominates).
  const DecodeCacheStats stats = cached.decode_cache_stats();
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.hit_rate(), 0.0);
  EXPECT_LE(stats.hit_rate(), 1.0);
  EXPECT_EQ(plain.decode_cache_stats().lookups, 0u);
}

TEST(TimelineDecodeCache, CachingWrapperBitIdenticalOnWindowedDecoder) {
  // Direct decoder-level equivalence: a CachingDecoder wrapped around the
  // sliding-window decoder returns the same prediction for every defect
  // set, first sight and cache hit alike.
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts;
  opts.rounds = 6;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  SlidingWindowDecoder inner(engine.matching_graph(),
                             engine.detector_rounds(), 6, {3, 1});
  SlidingWindowDecoder reference(engine.matching_graph(),
                                 engine.detector_rounds(), 6, {3, 1});
  CachingDecoder caching(inner);

  const auto n =
      static_cast<std::uint32_t>(engine.matching_graph().num_detectors());
  for (int pass = 0; pass < 2; ++pass) {  // second pass hits the cache
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a; b < n; ++b) {
        std::vector<std::uint32_t> defects{a};
        if (b != a) defects.push_back(b);
        ASSERT_EQ(caching.decode(defects), reference.decode(defects));
      }
    }
  }
  EXPECT_GT(caching.stats().hits, 0u);
}

}  // namespace
}  // namespace radsurf
