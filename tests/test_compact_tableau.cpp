// The compact single-word tableau engine must consume randomness in the
// same order and produce bit-identical measurement records as the generic
// TableauSimulator on the same tape and RNG stream — including under
// radiation reset noise, shared-instant erasures, and replay constraints.
// This is the contract that lets the campaign engine swap it into the
// residual fast path without any statistical revalidation.
#include "stab/compact_tableau.hpp"

#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "stab/tableau_sim.hpp"
#include "transpile/transpiler.hpp"

namespace radsurf {
namespace {

Circuit transpiled_noisy(const SurfaceCode& code, const Graph& arch,
                         double p) {
  const Circuit logical = code.build();
  const TranspileResult tr = transpile(logical, arch, {});
  return DepolarizingModel{p}.apply(tr.circuit);
}

// Bit-identical records over many shots from equal seeds.
void expect_equivalent(const Circuit& circuit,
                       const std::vector<std::uint32_t>* corrupted,
                       int shots, std::uint64_t seed) {
  ASSERT_TRUE(CompactTableauSimulator::supports(circuit.num_qubits()));
  TableauSimulator generic(circuit);
  CompactTableauSimulator compact(CircuitTape::compile(circuit));
  Rng rng_a(seed);
  Rng rng_b(seed);
  BitVec rec_a(circuit.num_measurements());
  BitVec rec_b(circuit.num_measurements());
  for (int s = 0; s < shots; ++s) {
    if (corrupted) {
      generic.sample_with_erasure_into(rng_a, *corrupted, rec_a);
      compact.sample_with_erasure_into(rng_b, *corrupted, rec_b);
    } else {
      generic.sample_into(rng_a, rec_a);
      compact.sample_into(rng_b, rec_b);
    }
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      ASSERT_EQ(rec_a.get(r), rec_b.get(r))
          << "record " << r << " diverged at shot " << s;
  }
}

TEST(CompactTableau, MatchesGenericOnRepetitionIntrinsic) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  expect_equivalent(transpiled_noisy(code, make_mesh(5, 2), 2e-2), nullptr,
                    400, 11);
}

TEST(CompactTableau, MatchesGenericOnXxzzIntrinsic) {
  const XXZZCode code(3, 3);
  expect_equivalent(transpiled_noisy(code, make_mesh(5, 4), 1e-2), nullptr,
                    300, 13);
}

TEST(CompactTableau, MatchesGenericUnderRadiationResets) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 2, 1.0, true);
  expect_equivalent(instrument_reset_noise(noisy, probs), nullptr, 300, 17);
}

TEST(CompactTableau, MatchesGenericUnderPartialRadiation) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Graph arch = make_mesh(5, 2);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 1, 0.35, true);
  expect_equivalent(instrument_reset_noise(noisy, probs), nullptr, 400, 19);
}

TEST(CompactTableau, MatchesGenericUnderSharedInstantErasure) {
  const XXZZCode code(3, 3);
  const Circuit noisy = transpiled_noisy(code, make_mesh(5, 4), 1e-2);
  const std::vector<std::uint32_t> corrupted{2, 3, 7};
  expect_equivalent(noisy, &corrupted, 300, 23);
}

// Replay constraints must pin heralds identically in both engines.
TEST(CompactTableau, MatchesGenericUnderReplayConstraints) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 2, 0.6, true);
  const Circuit circuit = instrument_reset_noise(noisy, probs);

  // Pin a subset of sites: even raw ordinals up to 40, firing every third.
  std::vector<std::uint32_t> forced;
  std::vector<std::uint32_t> fired;
  for (std::uint32_t s = 0; s < 40; s += 2) {
    forced.push_back(s);
    if (s % 6 == 0) fired.push_back(s);
  }
  ReplayConstraint constraint;
  constraint.forced_sites = &forced;
  constraint.fired = fired.data();
  constraint.num_fired = fired.size();

  TableauSimulator generic(circuit);
  CompactTableauSimulator compact(CircuitTape::compile(circuit));
  Rng rng_a(31);
  Rng rng_b(31);
  BitVec rec_a(circuit.num_measurements());
  BitVec rec_b(circuit.num_measurements());
  for (int s = 0; s < 200; ++s) {
    generic.sample_replay_into(rng_a, nullptr, constraint, rec_a);
    compact.sample_replay_into(rng_b, nullptr, constraint, rec_b);
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      ASSERT_EQ(rec_a.get(r), rec_b.get(r)) << "record " << r;
  }
}

// A pinned strike ordinal must reproduce the erasure of a free-running
// shot that drew the same ordinal.
TEST(CompactTableau, PinnedStrikeOrdinalReplaysErasure) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Circuit noisy = transpiled_noisy(code, make_mesh(5, 2), 0.0);
  const std::vector<std::uint32_t> corrupted{0, 2};
  TableauSimulator sim(noisy);
  CompactTableauSimulator compact(CircuitTape::compile(noisy));
  for (std::uint32_t ordinal : {0u, 5u, 17u}) {
    ReplayConstraint constraint;
    constraint.has_strike = true;
    constraint.strike_ordinal = ordinal;
    Rng rng_a(7);
    Rng rng_b(7);
    BitVec rec_a(noisy.num_measurements());
    BitVec rec_b(noisy.num_measurements());
    sim.sample_replay_into(rng_a, &corrupted, constraint, rec_a);
    compact.sample_replay_into(rng_b, &corrupted, constraint, rec_b);
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      EXPECT_EQ(rec_a.get(r), rec_b.get(r))
          << "ordinal " << ordinal << " record " << r;
  }
}

// ---------------------------------------------------------------------------
// Word-boundary regression suite (the n=32 boundary bug).
//
// The single-word engine's header once claimed support for "2n + 1 rows
// <= 64 with n <= 32" — false arithmetic at n = 32 (65 rows).  The fix
// bounds the single-word tableau at n = 31 and routes n >= 32 through the
// word-sliced WideTableau.  These tests pin every engine transition
// (31 -> 32 single->multi word, 63 -> 64 -> 65 column words, known-mask
// words) bit-for-bit against the generic tableau over full measure/reset
// cycles, so neither boundary can silently regress again.
// ---------------------------------------------------------------------------

// Dense random Clifford + measure/reset/noise circuit exercising every
// gate the tape walker handles.
Circuit random_clifford_cycle(std::size_t n, std::uint64_t seed,
                              int layers) {
  Rng gen(seed);
  Circuit c(n);
  auto q = [&] { return static_cast<std::uint32_t>(gen.below(n)); };
  for (int l = 0; l < layers; ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      switch (gen.below(8)) {
        case 0: c.h(q()); break;
        case 1: c.s(q()); break;
        case 2: c.s_dag(q()); break;
        case 3: {
          const auto a = q(), b = q();
          if (a != b) c.cx(a, b);
          break;
        }
        case 4: {
          const auto a = q(), b = q();
          if (a != b) c.cz(a, b);
          break;
        }
        case 5: {
          const auto a = q(), b = q();
          if (a != b) c.swap_gate(a, b);
          break;
        }
        case 6: c.x(q()); break;
        default: c.y(q()); break;
      }
    }
    // Full measure/reset cycle on a random third of the register.
    for (std::size_t i = 0; i < n / 3 + 1; ++i) {
      const auto t = q();
      switch (gen.below(3)) {
        case 0: c.m(t); break;
        case 1: c.r(t); break;
        default: c.mr(t); break;
      }
    }
    c.append(Gate::DEPOLARIZE1, {q()}, {0.3});
    c.append(Gate::X_ERROR, {q()}, {0.2});
  }
  for (std::uint32_t i = 0; i < n; ++i) c.m(i);
  return c;
}

// n = 31: the last size served by the single-word engine; n = 32/33: the
// first word-sliced sizes (regression for the old false n <= 32 claim).
TEST(CompactTableauWordBoundary, MatchesGenericAtN31N32N33) {
  for (std::size_t n : {31u, 32u, 33u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    for (std::uint64_t cs = 1; cs <= 4; ++cs)
      expect_equivalent(random_clifford_cycle(n, cs * 977, 6), nullptr, 60,
                        n * 31 + cs);
  }
}

// n = 63/64/65: the known/value-mask word boundary and the 2- to 3-word
// column transition of the word-sliced engine.
TEST(CompactTableauWordBoundary, MatchesGenericAtColumnWordBoundaries) {
  for (std::size_t n : {63u, 64u, 65u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    for (std::uint64_t cs = 1; cs <= 3; ++cs)
      expect_equivalent(random_clifford_cycle(n, cs * 1409, 5), nullptr, 40,
                        n * 37 + cs);
  }
}

// Erasure strikes and replay constraints through the word-sliced engine.
TEST(CompactTableauWordBoundary, WideEngineMatchesGenericUnderErasure) {
  const std::vector<std::uint32_t> corrupted{0, 17, 31, 32, 40};
  expect_equivalent(random_clifford_cycle(41, 4242, 5), &corrupted, 60, 71);
}

TEST(CompactTableauWordBoundary, WideEngineMatchesGenericOnRotatedStyle) {
  // An actual stabilizer-code shape above the single-word limit: XXZZ
  // (3,3) is 18 data + 8 ancilla + readout = 27 logical qubits, but the
  // transpiled mesh device has 35 — the word-sliced engine's bread and
  // butter in the campaign replay path.
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 7);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  ASSERT_GT(noisy.num_qubits(), CompactTableau::kMaxQubits);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 2, 0.8, true);
  expect_equivalent(instrument_reset_noise(noisy, probs), nullptr, 200, 29);
}

// The engine-selection rule surfaced to campaign stats and BENCH extras.
TEST(CompactTableauWordBoundary, EngineNameFollowsSelectionRule) {
  EXPECT_EQ(CompactTableauSimulator::engine_name(1), "compact");
  EXPECT_EQ(CompactTableauSimulator::engine_name(31), "compact");
  EXPECT_EQ(CompactTableauSimulator::engine_name(32), "compact:w1");
  EXPECT_EQ(CompactTableauSimulator::engine_name(33), "compact:w2");
  EXPECT_EQ(CompactTableauSimulator::engine_name(241), "compact:w8");
  EXPECT_EQ(CompactTableauSimulator::engine_name(881), "compact:w28");
  EXPECT_EQ(CompactTableauSimulator::engine_name(1024), "compact:w32");
  EXPECT_EQ(CompactTableauSimulator::engine_name(1025), "tableau");
  EXPECT_EQ(CompactTableauSimulator::engine_name(0), "tableau");
}

}  // namespace radsurf
}  // namespace
