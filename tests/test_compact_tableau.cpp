// The compact single-word tableau engine must consume randomness in the
// same order and produce bit-identical measurement records as the generic
// TableauSimulator on the same tape and RNG stream — including under
// radiation reset noise, shared-instant erasures, and replay constraints.
// This is the contract that lets the campaign engine swap it into the
// residual fast path without any statistical revalidation.
#include "stab/compact_tableau.hpp"

#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "stab/tableau_sim.hpp"
#include "transpile/transpiler.hpp"

namespace radsurf {
namespace {

Circuit transpiled_noisy(const SurfaceCode& code, const Graph& arch,
                         double p) {
  const Circuit logical = code.build();
  const TranspileResult tr = transpile(logical, arch, {});
  return DepolarizingModel{p}.apply(tr.circuit);
}

// Bit-identical records over many shots from equal seeds.
void expect_equivalent(const Circuit& circuit,
                       const std::vector<std::uint32_t>* corrupted,
                       int shots, std::uint64_t seed) {
  ASSERT_TRUE(CompactTableauSimulator::supports(circuit.num_qubits()));
  TableauSimulator generic(circuit);
  CompactTableauSimulator compact(CircuitTape::compile(circuit));
  Rng rng_a(seed);
  Rng rng_b(seed);
  BitVec rec_a(circuit.num_measurements());
  BitVec rec_b(circuit.num_measurements());
  for (int s = 0; s < shots; ++s) {
    if (corrupted) {
      generic.sample_with_erasure_into(rng_a, *corrupted, rec_a);
      compact.sample_with_erasure_into(rng_b, *corrupted, rec_b);
    } else {
      generic.sample_into(rng_a, rec_a);
      compact.sample_into(rng_b, rec_b);
    }
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      ASSERT_EQ(rec_a.get(r), rec_b.get(r))
          << "record " << r << " diverged at shot " << s;
  }
}

TEST(CompactTableau, MatchesGenericOnRepetitionIntrinsic) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  expect_equivalent(transpiled_noisy(code, make_mesh(5, 2), 2e-2), nullptr,
                    400, 11);
}

TEST(CompactTableau, MatchesGenericOnXxzzIntrinsic) {
  const XXZZCode code(3, 3);
  expect_equivalent(transpiled_noisy(code, make_mesh(5, 4), 1e-2), nullptr,
                    300, 13);
}

TEST(CompactTableau, MatchesGenericUnderRadiationResets) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 2, 1.0, true);
  expect_equivalent(instrument_reset_noise(noisy, probs), nullptr, 300, 17);
}

TEST(CompactTableau, MatchesGenericUnderPartialRadiation) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Graph arch = make_mesh(5, 2);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 1, 0.35, true);
  expect_equivalent(instrument_reset_noise(noisy, probs), nullptr, 400, 19);
}

TEST(CompactTableau, MatchesGenericUnderSharedInstantErasure) {
  const XXZZCode code(3, 3);
  const Circuit noisy = transpiled_noisy(code, make_mesh(5, 4), 1e-2);
  const std::vector<std::uint32_t> corrupted{2, 3, 7};
  expect_equivalent(noisy, &corrupted, 300, 23);
}

// Replay constraints must pin heralds identically in both engines.
TEST(CompactTableau, MatchesGenericUnderReplayConstraints) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  const Circuit noisy = transpiled_noisy(code, arch, 1e-2);
  const RadiationModel model;
  const auto probs = model.qubit_probabilities(arch, 2, 0.6, true);
  const Circuit circuit = instrument_reset_noise(noisy, probs);

  // Pin a subset of sites: even raw ordinals up to 40, firing every third.
  std::vector<std::uint32_t> forced;
  std::vector<std::uint32_t> fired;
  for (std::uint32_t s = 0; s < 40; s += 2) {
    forced.push_back(s);
    if (s % 6 == 0) fired.push_back(s);
  }
  ReplayConstraint constraint;
  constraint.forced_sites = &forced;
  constraint.fired = fired.data();
  constraint.num_fired = fired.size();

  TableauSimulator generic(circuit);
  CompactTableauSimulator compact(CircuitTape::compile(circuit));
  Rng rng_a(31);
  Rng rng_b(31);
  BitVec rec_a(circuit.num_measurements());
  BitVec rec_b(circuit.num_measurements());
  for (int s = 0; s < 200; ++s) {
    generic.sample_replay_into(rng_a, nullptr, constraint, rec_a);
    compact.sample_replay_into(rng_b, nullptr, constraint, rec_b);
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      ASSERT_EQ(rec_a.get(r), rec_b.get(r)) << "record " << r;
  }
}

// A pinned strike ordinal must reproduce the erasure of a free-running
// shot that drew the same ordinal.
TEST(CompactTableau, PinnedStrikeOrdinalReplaysErasure) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Circuit noisy = transpiled_noisy(code, make_mesh(5, 2), 0.0);
  const std::vector<std::uint32_t> corrupted{0, 2};
  TableauSimulator sim(noisy);
  CompactTableauSimulator compact(CircuitTape::compile(noisy));
  for (std::uint32_t ordinal : {0u, 5u, 17u}) {
    ReplayConstraint constraint;
    constraint.has_strike = true;
    constraint.strike_ordinal = ordinal;
    Rng rng_a(7);
    Rng rng_b(7);
    BitVec rec_a(noisy.num_measurements());
    BitVec rec_b(noisy.num_measurements());
    sim.sample_replay_into(rng_a, &corrupted, constraint, rec_a);
    compact.sample_replay_into(rng_b, &corrupted, constraint, rec_b);
    for (std::size_t r = 0; r < rec_a.size(); ++r)
      EXPECT_EQ(rec_a.get(r), rec_b.get(r))
          << "ordinal " << ordinal << " record " << r;
  }
}

}  // namespace radsurf
}  // namespace
