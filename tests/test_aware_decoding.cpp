// Herald-conditioned adaptive decoding (DecoderOptions::herald_aware):
// when a timeline realization's strike herald fires, the sliding windows
// decode on a matching graph rebuilt from the strike-instrumented circuit
// — the reset field folded into the DEM reweights the edges of the
// affected rounds and region.  This suite pins the statistical contract:
//
//  * Under chip-scale correlated bursts the aware decoder's logical error
//    rate is *lower* than the unaware decoder's, z-significantly, at
//    d = 5 and d = 11.  The comparison is paired — identical event
//    realizations AND identical shot RNG streams on both arms (only the
//    decoder differs), so the z-test is conservative.
//  * Under intrinsic-only noise (no herald) the aware mode is a strict
//    no-op: bit-for-bit the unaware decoder, not merely statistically
//    indistinguishable.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codes/code.hpp"
#include "codes/rotated.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"
#include "util/stats.hpp"

namespace radsurf {
namespace {

EngineOptions timeline_options(std::size_t rounds, bool aware) {
  EngineOptions opts;
  opts.rounds = rounds;
  opts.layout = LayoutStrategy::TRIVIAL;  // native arch: identity is perfect
  opts.shots_per_chunk = 256;
  opts.whole_history_decoder = false;  // timeline campaigns only
  opts.decoder.herald_aware = aware;
  // The decodable-margin regime: a low intrinsic rate keeps the shared
  // decoder graph near-uniform (decoder_error_rate = 0 floors weights at
  // max(p, 1e-3)), so the strike-reweighted graph carries real information.
  // At high intrinsic rates the strike either drowns in background defects
  // or saturates LER near 50%, where no decoder choice helps.
  opts.physical_error_rate = 1e-3;
  return opts;
}

TimelineOptions chip_burst_options(double qp_lambda, double intensity,
                                   std::size_t duration) {
  TimelineOptions topts;
  topts.chip_burst = true;
  topts.qp_lambda = qp_lambda;
  topts.intensity = intensity;
  topts.duration_rounds = duration;
  return topts;
}

struct PairResult {
  Proportion unaware;
  Proportion aware;
};

// Paired aware/unaware run: both engines share the code, architecture,
// rounds and shot seeds; the events are fixed by the caller, so the two
// arms sample the *same* physical error histories and differ only in the
// decoder's matching graph.
PairResult run_pair(int d, std::size_t rounds, const TimelineOptions& topts,
                    const std::vector<std::vector<RadiationEvent>>& episodes,
                    std::size_t shots, std::uint64_t seed,
                    std::size_t window) {
  const RotatedCode code(d, RotatedMemory::Z);
  const InjectionEngine unaware(code, native_graph_for(code),
                                timeline_options(rounds, false));
  const InjectionEngine aware(code, native_graph_for(code),
                              timeline_options(rounds, true));
  const RadiationTimeline timeline(unaware.radiation(), topts);
  SlidingWindowOptions wopts;
  wopts.window = window;
  PairResult result;
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const std::uint64_t shot_seed = seed + 0x9e37 * (i + 1);
    result.unaware +=
        unaware.run_timeline(timeline, episodes[i], shots, shot_seed, wopts);
    result.aware +=
        aware.run_timeline(timeline, episodes[i], shots, shot_seed, wopts);
  }
  return result;
}

// One chip-burst strike per episode, epicenters cycling over the device.
std::vector<std::vector<RadiationEvent>> single_strike_episodes(
    int d, std::size_t strike_round, double intensity,
    std::size_t num_episodes) {
  const RotatedCode code(d, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  std::vector<std::vector<RadiationEvent>> episodes;
  for (std::size_t i = 0; i < num_episodes; ++i) {
    const auto root = static_cast<std::uint32_t>(
        (i * arch.num_nodes()) / num_episodes);
    episodes.push_back({{strike_round, root, intensity}});
  }
  return episodes;
}

TEST(AwareDecoding, NoOpWithoutHeraldIsBitForBit) {
  // No strike herald: the aware engine must take the exact unaware path —
  // same shared baseline decoder over the intrinsic matching graph, same
  // shot streams, identical successes.  (The ablation spec's quiet cells
  // rely on this being a no-op, not merely statistically close.)
  const std::vector<std::vector<RadiationEvent>> quiet = {{}, {}};
  TimelineOptions topts = chip_burst_options(3.0, 0.8, 4);
  const PairResult r = run_pair(5, 8, topts, quiet, 400, 41, 4);
  EXPECT_EQ(r.aware.successes, r.unaware.successes);
  EXPECT_EQ(r.aware.trials, r.unaware.trials);
  EXPECT_GT(r.aware.trials, 0u);
  // And the z-test the satellite asks for, trivially satisfied.
  EXPECT_LT(std::abs(two_proportion_z(r.aware, r.unaware)), 4.0);
}

TEST(AwareDecoding, AwareBeatsUnawareUnderBurstsD5) {
  // Chip-burst strikes at d = 5: the reweighted windows must recover a
  // z-significant fraction of the heralded shots the intrinsic-weighted
  // windows lose.  Paired arms (same events, same shot streams) make the
  // pooled two-proportion z conservative.  A localized blob (qp_lambda
  // small vs. the chip) at moderate intensity is the regime with margin:
  // intense chip-spanning bursts saturate LER near 50% where no decoder
  // helps.  Reference point for this config: unaware ~10.2% vs aware
  // ~7.3%, z ~ -7.2 — far below the -3 gate.
  TimelineOptions topts = chip_burst_options(1.5, 0.5, 6);
  const auto episodes = single_strike_episodes(5, 2, 0.5, 4);
  const PairResult r = run_pair(5, 12, topts, episodes, 2500, 1000, 6);
  EXPECT_LT(r.aware.rate(), r.unaware.rate());
  EXPECT_LT(two_proportion_z(r.aware, r.unaware), -3.0)
      << "aware " << r.aware.successes << "/" << r.aware.trials
      << " vs unaware " << r.unaware.successes << "/" << r.unaware.trials;
}

TEST(AwareDecoding, AwareBeatsUnawareUnderBurstsD11) {
  // Same contract at real distance.  qp_lambda grows with the chip so
  // the blob still covers a decodable fraction of the device; the run is
  // shortened to 8 rounds (the strike's duration then spans most of the
  // memory) to keep the d = 11 shot budget inside the suite's runtime
  // ceiling.  Reference point: unaware ~13.3% vs aware ~8.5%, z ~ -4.5.
  TimelineOptions topts = chip_burst_options(3.0, 0.6, 6);
  const auto episodes = single_strike_episodes(11, 2, 0.6, 3);
  const PairResult r = run_pair(11, 8, topts, episodes, 550, 1000, 4);
  EXPECT_LT(r.aware.rate(), r.unaware.rate());
  EXPECT_LT(two_proportion_z(r.aware, r.unaware), -3.0)
      << "aware " << r.aware.successes << "/" << r.aware.trials
      << " vs unaware " << r.unaware.successes << "/" << r.unaware.trials;
}

TEST(AwareDecoding, CampaignCountsAwareRebuilds) {
  // run_timeline_campaign swaps heralded realizations onto per-realization
  // strike-reweighted decoders and counts them; quiet campaigns (rate 0)
  // never rebuild and match the unaware campaign bit for bit.
  const RotatedCode code(3, RotatedMemory::Z);
  const InjectionEngine unaware(code, native_graph_for(code),
                                timeline_options(8, false));
  const InjectionEngine aware(code, native_graph_for(code),
                              timeline_options(8, true));
  SlidingWindowOptions wopts;
  wopts.window = 4;

  TimelineOptions burst = chip_burst_options(2.0, 0.6, 4);
  burst.events_per_round = 0.25;  // ~2 strikes per 8-round realization
  const RadiationTimeline stormy(aware.radiation(), burst);
  const TimelineSummary s =
      aware.run_timeline_campaign(stormy, 4, 100, 31, wopts);
  EXPECT_GT(s.aware_rebuilds, 0u);
  EXPECT_LE(s.aware_rebuilds, s.num_timelines);
  EXPECT_GT(s.total_events, 0u);

  TimelineOptions calm = burst;
  calm.events_per_round = 0.0;
  const RadiationTimeline quiet(aware.radiation(), calm);
  const TimelineSummary qa = aware.run_timeline_campaign(quiet, 2, 200, 5, wopts);
  const TimelineSummary qu =
      unaware.run_timeline_campaign(quiet, 2, 200, 5, wopts);
  EXPECT_EQ(qa.aware_rebuilds, 0u);
  EXPECT_EQ(qa.errors.successes, qu.errors.successes);
  EXPECT_EQ(qa.errors.trials, qu.errors.trials);
}

}  // namespace
}  // namespace radsurf
