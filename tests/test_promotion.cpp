// Herald-group frame promotion: correctness contracts.
//
// A promoted group replays one conditioned tableau walk per distinct
// herald signature and frame-replays the members against it, injecting a
// fresh-coined destabilizer per random collapse of the walk (see
// FrameSimulator::run_group).  These tests pin the machinery at three
// levels: bit-for-bit on deterministic conditioned walks, bit-level
// correlation structure under destabilizer injection (marginals alone
// would accept an injector that breaks measurement correlations), and
// whole-campaign z-tests against the per-shot exact engine at real
// rotated distances.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "codes/rotated.hpp"
#include "codes/code.hpp"
#include "inject/campaign.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace radsurf {
namespace {

// Site 0 is reference-random (H puts q0 on the equator), so it is a
// forced site of every residual signature; the second H undoes the
// superposition, making the *unfired* signature's conditioned walk fully
// deterministic while the *fired* one collapses twice.
Circuit forced_site_circuit() {
  Circuit c(2);
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {0.3});
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  return c;
}

TEST(HeraldPromotion, DeterministicConditionedWalkPinsBitForBit) {
  const Circuit c = forced_site_circuit();
  const std::vector<std::uint32_t> forced{0};
  ReplayConstraint constraint;
  constraint.forced_sites = &forced;
  constraint.fired = nullptr;
  constraint.num_fired = 0;  // the unfired signature

  TableauSimulator sim(c);
  const ConditionedReference cond =
      sim.conditioned_reference(nullptr, constraint);
  // H..H cancel, so nothing collapses randomly: the walk is the group.
  EXPECT_TRUE(cond.events.empty());
  ASSERT_EQ(cond.record.size(), 2u);
  EXPECT_FALSE(cond.record.get(0));
  EXPECT_FALSE(cond.record.get(1));

  // Every promoted member's flips must be zero: absolute record ==
  // conditioned record, bit for bit.
  constexpr std::size_t kBatch = 192;
  FrameSimulator fsim(c, kBatch, &cond.trace);
  Rng rng(12345);
  BitVec secondary(kBatch);
  ResidualDetail detail;
  const MeasurementFlips& flips =
      fsim.run_group(rng, constraint, cond, nullptr, &secondary, &detail);
  EXPECT_FALSE(secondary.any());
  for (std::size_t r = 0; r < flips.size(); ++r)
    for (std::size_t s = 0; s < kBatch; ++s)
      EXPECT_FALSE(flips[r].get(s)) << "record " << r << " shot " << s;

  // The exact engine under the same pinned signature consumes no
  // randomness either and must land on the identical record.
  BitVec record(c.num_measurements());
  for (std::uint64_t seed : {1u, 99u, 3000u}) {
    Rng exact_rng(seed);
    sim.sample_replay_into(exact_rng, nullptr, constraint, record);
    EXPECT_EQ(record.get(0), cond.record.get(0));
    EXPECT_EQ(record.get(1), cond.record.get(1));
  }
}

TEST(HeraldPromotion, DestabilizerInjectionPreservesCorrelations) {
  // The fired signature collapses q0 at the pinned reset and again at
  // M(0), by then entangled as (|00> + |11>)/sqrt(2): the exact
  // distribution is bit0 == bit1, uniform.  A promoted member gets the
  // M(0) collapse as an injected X0 X1 destabilizer under one coin, so
  // the equality must hold bit-for-bit in every member — per-bit
  // marginals alone would accept independent uniform bits.
  const Circuit c = forced_site_circuit();
  const std::vector<std::uint32_t> forced{0};
  const std::uint32_t fired_site = 0;
  ReplayConstraint constraint;
  constraint.forced_sites = &forced;
  constraint.fired = &fired_site;
  constraint.num_fired = 1;

  TableauSimulator sim(c);
  const ConditionedReference cond =
      sim.conditioned_reference(nullptr, constraint);
  EXPECT_FALSE(cond.events.empty());

  constexpr std::size_t kBatch = 2048;
  FrameSimulator fsim(c, kBatch, &cond.trace);
  Rng rng(777);
  BitVec secondary(kBatch);
  ResidualDetail detail;
  const MeasurementFlips& flips =
      fsim.run_group(rng, constraint, cond, nullptr, &secondary, &detail);
  EXPECT_FALSE(secondary.any());
  Proportion ones;
  for (std::size_t s = 0; s < kBatch; ++s) {
    const bool b0 = flips[0].get(s) ^ cond.record.get(0);
    const bool b1 = flips[1].get(s) ^ cond.record.get(1);
    EXPECT_EQ(b0, b1) << "shot " << s;
    ones.trials++;
    ones.successes += b0 ? 1 : 0;
  }
  // ... and the shared bit stays a fair coin (exact replay agreement).
  Proportion exact;
  BitVec record(c.num_measurements());
  Rng exact_rng(778);
  for (std::size_t s = 0; s < kBatch; ++s) {
    sim.sample_replay_into(exact_rng, nullptr, constraint, record);
    ASSERT_EQ(record.get(0), record.get(1));
    exact.trials++;
    exact.successes += record.get(0) ? 1 : 0;
  }
  EXPECT_LT(std::abs(two_proportion_z(ones, exact)), 4.0)
      << "group " << ones.rate() << " vs exact " << exact.rate();
}

// Localized full-intensity strikes share one herald signature per strike
// ordinal, so the whole residual mass promotes into a handful of groups —
// the AUTO and EXACT campaign rates must stay statistically identical.
void expect_promoted_strike_matches_exact(int distance, std::size_t shots,
                                          std::uint64_t seed) {
  const RotatedCode code(distance, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  EngineOptions auto_opts;
  auto_opts.layout = LayoutStrategy::TRIVIAL;
  EngineOptions exact_opts = auto_opts;
  exact_opts.sampling_path = SamplingPath::EXACT;
  InjectionEngine auto_engine(code, arch, auto_opts);
  InjectionEngine exact_engine(code, arch, exact_opts);
  const std::uint32_t root = auto_engine.active_qubits()[0];
  const Proportion pa =
      auto_engine.run_radiation_at(root, 1.0, false, shots, seed);
  const Proportion pe =
      exact_engine.run_radiation_at(root, 1.0, false, shots, seed + 1);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "d=" << distance << " AUTO " << pa.rate() << " vs EXACT "
      << pe.rate();
  const PromotionStats ps = auto_engine.promotion_stats();
  EXPECT_GT(ps.groups, 0u);
  EXPECT_GT(ps.promoted_shots, 0u);
  // Strike-ordinal signatures are few: promotion must carry nearly all of
  // the residual mass (singletons, if any, are rare ordinals).
  EXPECT_GT(ps.promoted_shots, ps.exact_replays);
}

TEST(HeraldPromotion, PromotedStrikeMatchesExactAtD3) {
  expect_promoted_strike_matches_exact(3, 4000, 211);
}

TEST(HeraldPromotion, PromotedStrikeMatchesExactAtD5) {
  expect_promoted_strike_matches_exact(5, 3000, 223);
}

TEST(HeraldPromotion, AutoMatchesExactAtD11SpreadStrike) {
  // Full-intensity spread strike at a real distance: herald signatures
  // are essentially all distinct, so promotion degrades gracefully to the
  // per-shot singles path — the z-test pins that path (and the word-
  // sliced kernels under it) against the exact engine where the high-
  // distance sampling cliff used to live.
  const RotatedCode code(11, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  EngineOptions auto_opts;
  auto_opts.layout = LayoutStrategy::TRIVIAL;
  EngineOptions exact_opts = auto_opts;
  exact_opts.sampling_path = SamplingPath::EXACT;
  InjectionEngine auto_engine(code, arch, auto_opts);
  InjectionEngine exact_engine(code, arch, exact_opts);
  const std::uint32_t root = auto_engine.active_qubits()[0];
  const std::size_t shots = 1500;
  const Proportion pa =
      auto_engine.run_radiation_at(root, 1.0, true, shots, 401);
  const Proportion pe =
      exact_engine.run_radiation_at(root, 1.0, true, shots, 402);
  EXPECT_LT(std::abs(two_proportion_z(pa, pe)), 4.0)
      << "AUTO " << pa.rate() << " vs EXACT " << pe.rate();
}

TEST(HeraldPromotion, PromotionOnAndOffSampleTheSameDistribution) {
  const RotatedCode code(3, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  EngineOptions on;
  on.layout = LayoutStrategy::TRIVIAL;
  EngineOptions off = on;
  off.herald_promotion = false;
  InjectionEngine engine_on(code, arch, on);
  InjectionEngine engine_off(code, arch, off);
  const std::uint32_t root = engine_on.active_qubits()[0];
  const Proportion po = engine_on.run_radiation_at(root, 1.0, false, 6000, 7);
  const Proportion pf =
      engine_off.run_radiation_at(root, 1.0, false, 6000, 8);
  EXPECT_LT(std::abs(two_proportion_z(po, pf)), 4.0)
      << "on " << po.rate() << " vs off " << pf.rate();
  EXPECT_GT(engine_on.promotion_stats().promoted_shots, 0u);
  EXPECT_EQ(engine_off.promotion_stats().promoted_shots, 0u);
}

TEST(HeraldPromotion, PromotedCampaignsAreDeterministic) {
  const RotatedCode code(3, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  EngineOptions opts;
  opts.layout = LayoutStrategy::TRIVIAL;
  InjectionEngine engine(code, arch, opts);
  const std::uint32_t root = engine.active_qubits()[0];
  const Proportion a = engine.run_radiation_at(root, 1.0, false, 2000, 19);
  const Proportion b = engine.run_radiation_at(root, 1.0, false, 2000, 19);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trials, b.trials);
}

}  // namespace
}  // namespace radsurf
