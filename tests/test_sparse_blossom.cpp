// Sparse region-growing blossom matcher vs the dense oracle.
//
// The sparse matcher resolves every cluster above the subset-DP threshold,
// so its exactness IS the decoder's exactness in the high-defect regime the
// radiation campaigns live in.  Three layers of pinning:
//
//  * matcher level: brute-force enumeration oracle over random sparse
//    savings graphs, including degenerate all-equal-weight instances where
//    many optima tie — the matcher must hit the optimal total savings and
//    return a self-consistent matching;
//  * decoder level: randomized defect sets (k = 2..40) over repetition and
//    XXZZ circuit graphs, sparse-blossom total matching weight against the
//    dense blossom oracle, and identical predictions whenever the two
//    backends pick the same matching (ties may legitimately differ in
//    pairs, never in weight);
//  * warm start: re-solving the resident instance must reproduce the
//    matching exactly and report itself in stats().warm_reuses.
#include "decoder/sparse_blossom.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/mwpm.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

using Edge = SparseBlossomMatcher::Edge;

MatchingGraph circuit_graph(const SurfaceCode& code, double p) {
  const Circuit noisy = DepolarizingModel{p}.apply(code.build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Exhaustive maximum-savings (non-perfect) matching: skip-or-take over the
// edge list.  Exponential, so instances stay tiny — that is the point of an
// oracle.
std::int64_t brute_best(const std::vector<Edge>& edges, std::size_t i,
                        std::uint32_t used) {
  if (i == edges.size()) return 0;
  std::int64_t best = brute_best(edges, i + 1, used);
  const Edge& e = edges[i];
  if (!((used >> e.a) & 1u) && !((used >> e.b) & 1u))
    best = std::max(best, e.savings +
                              brute_best(edges, i + 1,
                                         used | (1u << e.a) | (1u << e.b)));
  return best;
}

// The matching the matcher returned, validated for self-consistency and
// summed against the edge list it was given.
std::int64_t matching_savings(const std::vector<std::uint32_t>& mate,
                              const std::vector<Edge>& edges) {
  std::int64_t total = 0;
  for (const Edge& e : edges) {
    if (e.a != e.b && mate[e.a] == e.b) {
      EXPECT_EQ(mate[e.b], e.a);
      total += e.savings;
    }
  }
  return total;
}

TEST(SparseBlossom, EmptyAndEdgelessInstances) {
  SparseBlossomMatcher m;
  EXPECT_TRUE(m.solve(0, {}).empty());
  const auto& mate = m.solve(5, {});
  ASSERT_EQ(mate.size(), 5u);
  for (std::uint32_t x : mate) EXPECT_EQ(x, SparseBlossomMatcher::kBoundary);
  EXPECT_EQ(m.total_savings(), 0);
}

TEST(SparseBlossom, MatchesBruteForceOnRandomSparseGraphs) {
  SparseBlossomMatcher m;
  Rng rng(20260808);
  for (int rep = 0; rep < 400; ++rep) {
    const std::size_t n = 2 + rng.below(7);  // 2..8 nodes
    std::vector<Edge> edges;
    for (std::uint32_t a = 0; a < n; ++a)
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (!rng.bernoulli(0.55)) continue;
        edges.push_back({a, b, static_cast<std::int64_t>(1 + rng.below(50))});
      }
    const auto& mate = m.solve(n, edges);
    const std::int64_t expect = brute_best(edges, 0, 0);
    EXPECT_EQ(m.total_savings(), expect) << "rep " << rep;
    EXPECT_EQ(matching_savings(mate, edges), expect) << "rep " << rep;
  }
}

TEST(SparseBlossom, MatchesBruteForceOnDegenerateEqualWeights) {
  // All savings drawn from {4, 8}: almost every instance has many tied
  // optima, the regime where a wrong tie-break or a premature dual stop
  // shows up as a savings shortfall.
  SparseBlossomMatcher m;
  Rng rng(77);
  for (int rep = 0; rep < 400; ++rep) {
    const std::size_t n = 3 + rng.below(6);  // 3..8 nodes
    std::vector<Edge> edges;
    for (std::uint32_t a = 0; a < n; ++a)
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (!rng.bernoulli(0.6)) continue;
        edges.push_back({a, b, rng.bernoulli(0.5) ? 4 : 8});
      }
    const auto& mate = m.solve(n, edges);
    const std::int64_t expect = brute_best(edges, 0, 0);
    EXPECT_EQ(m.total_savings(), expect) << "rep " << rep;
    EXPECT_EQ(matching_savings(mate, edges), expect) << "rep " << rep;
  }
}

TEST(SparseBlossom, WarmStartReusesResidentInstance) {
  SparseBlossomMatcher m;
  Rng rng(5);
  std::vector<Edge> edges;
  for (std::uint32_t a = 0; a < 8; ++a)
    for (std::uint32_t b = a + 1; b < 8; ++b)
      if (rng.bernoulli(0.5))
        edges.push_back({a, b, static_cast<std::int64_t>(1 + rng.below(9))});
  ASSERT_FALSE(edges.empty());
  const std::vector<std::uint32_t> cold = m.solve(8, edges);
  const std::int64_t savings = m.total_savings();
  EXPECT_EQ(m.stats().warm_reuses, 0u);

  // Identical instance, shuffled edge order: answered from the arena.
  std::vector<Edge> shuffled(edges);
  std::reverse(shuffled.begin(), shuffled.end());
  const std::vector<std::uint32_t> warm = m.solve(8, shuffled);
  EXPECT_EQ(m.stats().warm_reuses, 1u);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(m.total_savings(), savings);

  // Any changed savings value forces a fresh (still exact) solve.
  std::vector<Edge> changed(edges);
  changed.front().savings += 1;
  const auto& fresh = m.solve(8, changed);
  EXPECT_EQ(m.stats().warm_reuses, 0u);
  EXPECT_EQ(matching_savings(fresh, changed), m.total_savings());
  EXPECT_EQ(m.total_savings(), brute_best(changed, 0, 0));
}

// --- decoder-level parity over circuit graphs ------------------------------

double matching_weight(const MwpmDecoder& dec,
                       const std::vector<MwpmMatch>& pairs) {
  double w = 0.0;
  for (const MwpmMatch& p : pairs) w += dec.distance(p.a, p.b);
  return w;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> canonical_pairs(
    const std::vector<MwpmMatch>& pairs) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const MwpmMatch& p : pairs)
    out.emplace_back(std::min(p.a, p.b), std::max(p.a, p.b));
  std::sort(out.begin(), out.end());
  return out;
}

// Sparse-blossom (dp_max_cluster = 0 sends every multi-defect cluster to
// the matcher under test) against the dense blossom oracle on randomized
// defect sets spanning the cliff.  Equal total weight always; equal
// prediction whenever the chosen matchings coincide (equal-weight ties may
// pick different pair sets, which is correct decoder behaviour).
void expect_weight_parity(const MatchingGraph& g, std::uint64_t seed,
                          bool cluster) {
  MwpmOptions sparse_opts;
  sparse_opts.cluster = cluster;
  sparse_opts.dp_max_cluster = 0;
  MwpmOptions dense_opts = sparse_opts;
  dense_opts.dense_matcher = true;
  MwpmDecoder sparse(g, sparse_opts);
  MwpmDecoder dense(g, dense_opts);
  const std::size_t nd = g.num_detectors();

  Rng rng(seed);
  for (std::size_t k : {2u, 3u, 5u, 8u, 13u, 20u, 28u, 34u, 40u}) {
    if (k > nd) continue;
    const int reps = k <= 20 ? 30 : 12;
    for (int rep = 0; rep < reps; ++rep) {
      const auto defects = random_defects(nd, k, rng);
      const auto sp = sparse.match_defects(defects);
      const auto dp = dense.match_defects(defects);
      ASSERT_NEAR(matching_weight(sparse, sp), matching_weight(dense, dp),
                  1e-6)
          << "k=" << k << " rep=" << rep;
      if (canonical_pairs(sp) == canonical_pairs(dp)) {
        EXPECT_EQ(sparse.decode(defects), dense.decode(defects))
            << "k=" << k << " rep=" << rep;
      }
    }
  }
}

TEST(SparseBlossom, WeightParityOnRepetition5) {
  expect_weight_parity(
      circuit_graph(RepetitionCode(5, RepetitionFlavor::BIT_FLIP), 1e-2), 11,
      /*cluster=*/true);
}

TEST(SparseBlossom, WeightParityOnRepetition15) {
  const auto g =
      circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP), 2e-2);
  expect_weight_parity(g, 12, /*cluster=*/true);
  // cluster=false stresses the matcher with the whole defect set as one
  // instance — single 40-node solves instead of prefiltered fragments.
  expect_weight_parity(g, 13, /*cluster=*/false);
}

TEST(SparseBlossom, WeightParityOnXxzz33) {
  const auto g = circuit_graph(XXZZCode(3, 3), 1e-2);
  expect_weight_parity(g, 14, /*cluster=*/true);
  expect_weight_parity(g, 15, /*cluster=*/false);
}

TEST(SparseBlossom, BoundaryHeavyDefectSetsStayBoundaryMatched) {
  // The shortest internal route between far-separated defects on a
  // repetition chain runs *through* the boundary, so pairing them ties
  // two boundary exits exactly (savings == 0).  The reduction keeps only
  // strictly positive savings, so the sparse backend must leave both
  // boundary-matched — and at the same total weight as the dense oracle,
  // whichever equal-weight optimum that one picks.
  const auto g =
      circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP), 1e-2);
  MwpmOptions sparse_opts;
  sparse_opts.dp_max_cluster = 0;
  sparse_opts.cluster = false;  // one instance, no prefilter help
  MwpmDecoder sparse(g, sparse_opts);
  MwpmOptions dense_opts = sparse_opts;
  dense_opts.dense_matcher = true;
  MwpmDecoder dense(g, dense_opts);

  const std::uint32_t B = g.boundary_node();
  const auto nd = static_cast<std::uint32_t>(g.num_detectors());
  std::vector<std::uint32_t> far;
  for (std::uint32_t a = 0; a < nd && far.empty(); ++a)
    for (std::uint32_t b = a + 1; b < nd; ++b) {
      if (std::abs(dense.distance(a, B) + dense.distance(b, B) -
                   dense.distance(a, b)) < 1e-9) {
        far = {a, b};
        break;
      }
    }
  ASSERT_EQ(far.size(), 2u) << "graph has no boundary-tied pair";
  const auto sp = sparse.match_defects(far);
  ASSERT_EQ(sp.size(), 2u);
  for (const MwpmMatch& p : sp) EXPECT_EQ(p.b, B);
  EXPECT_NEAR(matching_weight(sparse, sp),
              matching_weight(dense, dense.match_defects(far)), 1e-6);
  EXPECT_EQ(sparse.decode(far), dense.decode(far));
}

TEST(SparseBlossom, DpThresholdValueDoesNotChangeWeights) {
  // The escalation point is a performance knob, not a result knob: DP-only,
  // mixed, and blossom-only configurations must agree on matching weight
  // for every defect set.
  const auto g =
      circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP), 2e-2);
  std::vector<std::unique_ptr<MwpmDecoder>> decoders;
  for (std::size_t threshold : {0u, 4u, 10u, 16u}) {
    MwpmOptions o;
    o.dp_max_cluster = threshold;
    decoders.push_back(std::make_unique<MwpmDecoder>(g, o));
  }
  Rng rng(99);
  for (int rep = 0; rep < 40; ++rep) {
    const auto defects = random_defects(g.num_detectors(), 14, rng);
    const double w0 =
        matching_weight(*decoders[0], decoders[0]->match_defects(defects));
    for (std::size_t i = 1; i < decoders.size(); ++i)
      EXPECT_NEAR(matching_weight(*decoders[i],
                                  decoders[i]->match_defects(defects)),
                  w0, 1e-6)
          << "threshold index " << i << " rep " << rep;
  }
}

TEST(SparseBlossom, DecoderStatsCountSparseWork) {
  const auto g =
      circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP), 2e-2);
  MwpmOptions o;
  o.dp_max_cluster = 0;
  o.cluster = false;
  MwpmDecoder dec(g, o);
  Rng rng(3);
  const auto defects = random_defects(g.num_detectors(), 20, rng);
  (void)dec.decode(defects);
  const MwpmMatcherStats first = dec.matcher_stats();
  EXPECT_EQ(first.clusters_sparse, 1u);
  EXPECT_EQ(first.clusters_dense, 0u);
  EXPECT_EQ(first.clusters_dp, 0u);
  EXPECT_EQ(first.warm_reuses, 0u);
  // Re-decoding the identical syndrome is served by the warm start.
  (void)dec.decode(defects);
  const MwpmMatcherStats second = dec.matcher_stats();
  EXPECT_EQ(second.clusters_sparse, 2u);
  EXPECT_EQ(second.warm_reuses, 1u);

  MwpmOptions od = o;
  od.dense_matcher = true;
  MwpmDecoder dense(g, od);
  (void)dense.decode(defects);
  EXPECT_EQ(dense.matcher_stats().clusters_dense, 1u);
  EXPECT_EQ(dense.matcher_stats().clusters_sparse, 0u);
  EXPECT_EQ(dense.matcher_backend(), "dense-blossom");
  EXPECT_EQ(dec.matcher_backend(), "sparse-blossom");
}

}  // namespace
}  // namespace radsurf
