// Parameterized property sweeps across the whole stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arch/subgraphs.hpp"
#include "arch/topologies.hpp"
#include "codes/xxzz.hpp"
#include "decoder/blossom.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

// --- XXZZ family closed forms ----------------------------------------------

class XxzzFamily : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(XxzzFamily, PlaquetteCountsMatchClosedForm) {
  const auto [dz, dx] = GetParam();
  const XXZZCode code(dz, dx);
  const std::size_t n = static_cast<std::size_t>(dz) *
                        static_cast<std::size_t>(dx);
  EXPECT_EQ(code.num_z_plaquettes() + code.num_x_plaquettes(), n - 1);
  EXPECT_EQ(code.num_qubits(), 2 * n);
  if (dz > 1 && dx > 1) {
    // Both types present; exactly balanced only on square grids (on
    // rectangular grids the longer boundary carries more of its type).
    EXPECT_GT(code.num_z_plaquettes(), 0u);
    EXPECT_GT(code.num_x_plaquettes(), 0u);
    if (dz == dx) {
      EXPECT_EQ(code.num_z_plaquettes(), (n - 1) / 2);
      EXPECT_EQ(code.num_x_plaquettes(), (n - 1) / 2);
    } else {
      // More rows (dz) => longer left/right boundaries => more Z faces.
      EXPECT_EQ(code.num_z_plaquettes() > code.num_x_plaquettes(), dz > dx);
    }
  }
  // Logical operator weights match the distance tuple.
  EXPECT_EQ(code.logical_op_support().size(), static_cast<std::size_t>(dz));
  EXPECT_EQ(code.logical_z_support().size(), static_cast<std::size_t>(dx));
}

TEST_P(XxzzFamily, EveryDataQubitCoveredByAPlaquette) {
  const auto [dz, dx] = GetParam();
  const XXZZCode code(dz, dx);
  std::set<std::uint32_t> covered;
  for (const auto& p : code.plaquettes())
    covered.insert(p.data.begin(), p.data.end());
  const std::size_t n = static_cast<std::size_t>(dz) *
                        static_cast<std::size_t>(dx);
  EXPECT_EQ(covered.size(), n);
}

TEST_P(XxzzFamily, PlaquetteSupportsAreValidFaces) {
  const auto [dz, dx] = GetParam();
  const XXZZCode code(dz, dx);
  for (const auto& p : code.plaquettes()) {
    EXPECT_TRUE(p.data.size() == 2 || p.data.size() == 4);
    for (std::uint32_t q : p.data)
      EXPECT_LT(q, static_cast<std::uint32_t>(dz * dx));
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, XxzzFamily,
                         ::testing::Values(std::pair{3, 3}, std::pair{5, 3},
                                           std::pair{3, 5}, std::pair{5, 5},
                                           std::pair{7, 3}, std::pair{3, 7},
                                           std::pair{7, 1}, std::pair{1, 7}));

// --- DEM sanity across codes and noise levels -------------------------------

class DemSanity : public ::testing::TestWithParam<double> {};

TEST_P(DemSanity, MechanismsAreWellFormed) {
  const double p = GetParam();
  const XXZZCode code(3, 3);
  const Circuit noisy = DepolarizingModel{p}.apply(code.build());
  const auto dem = DetectorErrorModel::from_circuit(noisy);
  EXPECT_GT(dem.mechanisms.size(), 0u);
  for (const auto& m : dem.mechanisms) {
    EXPECT_GT(m.probability, 0.0);
    EXPECT_LT(m.probability, 1.0);
    EXPECT_GE(m.detectors.size(), 1u);
    EXPECT_LE(m.detectors.size(), 2u);
    EXPECT_TRUE(std::is_sorted(m.detectors.begin(), m.detectors.end()));
    for (std::uint32_t d : m.detectors)
      EXPECT_LT(d, dem.num_detectors);
  }
  // No duplicate (detectors, observables) keys after merging.
  std::set<std::pair<std::vector<std::uint32_t>, std::uint64_t>> keys;
  for (const auto& m : dem.mechanisms)
    EXPECT_TRUE(keys.insert({m.detectors, m.observables}).second);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, DemSanity,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 5e-2));

TEST(DemScaling, EdgeProbabilitiesScaleWithNoise) {
  // Doubling p should increase every merged edge probability.
  const XXZZCode code(3, 3);
  const auto dem_lo = DetectorErrorModel::from_circuit(
      DepolarizingModel{1e-3}.apply(code.build()));
  const auto dem_hi = DetectorErrorModel::from_circuit(
      DepolarizingModel{2e-3}.apply(code.build()));
  double sum_lo = 0, sum_hi = 0;
  for (const auto& m : dem_lo.mechanisms) sum_lo += m.probability;
  for (const auto& m : dem_hi.mechanisms) sum_hi += m.probability;
  EXPECT_GT(sum_hi, sum_lo * 1.5);
}

// --- blossom on structured graphs -------------------------------------------

TEST(BlossomStructure, PathGraphsMatchGreedyIntuition) {
  // On an even path with uniform weights, the perfect matching pairs
  // consecutive nodes: weight = n/2.
  for (int n : {4, 8, 12, 20}) {
    DenseMatcher m(static_cast<std::size_t>(n));
    for (int i = 0; i + 1 < n; ++i)
      m.add_edge(static_cast<std::size_t>(i),
                 static_cast<std::size_t>(i + 1), 1);
    m.solve();
    EXPECT_EQ(m.matching_weight(), n / 2) << "n=" << n;
  }
}

TEST(BlossomStructure, BipartiteAssignment) {
  // 3x3 assignment problem embedded as perfect matching.
  const std::int64_t cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  DenseMatcher m(6);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      m.add_edge(i, 3 + j, cost[i][j]);
  m.solve();
  EXPECT_EQ(m.matching_weight(), 5);  // 1 + 2 + 2
}

// --- subgraphs: sampler results are a subset of the enumeration -------------

TEST(SubgraphConsistency, SampledSetsAppearInEnumeration) {
  const Graph g = make_mesh(3, 4);
  for (std::size_t k : {2, 3, 4}) {
    const auto all = enumerate_connected_subgraphs(g, k);
    const std::set<std::vector<std::uint32_t>> universe(all.begin(),
                                                        all.end());
    Rng rng(17 + k);
    for (const auto& s : sample_connected_subgraphs(g, k, 12, rng))
      EXPECT_TRUE(universe.count(s)) << "k=" << k;
  }
}

// --- noiseless reference invariants across the code zoo ---------------------

struct CodeSpec {
  CodeFamily family;
  int dz, dx;
  std::size_t rounds;
};

class ReferenceInvariants : public ::testing::TestWithParam<CodeSpec> {};

TEST_P(ReferenceInvariants, ReferenceIsIdempotentAndObservableIsOne) {
  const auto spec = GetParam();
  const auto code = make_code(spec.family, spec.dz, spec.dx);
  const Circuit c = code->build(spec.rounds);
  TableauSimulator sim(c);
  const BitVec ref1 = sim.reference_sample();
  const BitVec ref2 = sim.reference_sample();
  EXPECT_EQ(ref1, ref2);
  // The last record (readout chain is followed by data measurements, so
  // the observable is not simply the last bit) — evaluate via DetectorSet.
  const DetectorSet ds = DetectorSet::compile(c);
  bool obs = false;
  for (std::size_t r : ds.observable_mask(0).set_bits()) obs ^= ref1.get(r);
  EXPECT_TRUE(obs) << "logical |1> expected";
}

INSTANTIATE_TEST_SUITE_P(
    CodeZoo, ReferenceInvariants,
    ::testing::Values(CodeSpec{CodeFamily::REPETITION, 3, 1, 2},
                      CodeSpec{CodeFamily::REPETITION, 1, 3, 2},
                      CodeSpec{CodeFamily::REPETITION, 7, 1, 3},
                      CodeSpec{CodeFamily::REPETITION, 1, 7, 4},
                      CodeSpec{CodeFamily::XXZZ, 3, 3, 2},
                      CodeSpec{CodeFamily::XXZZ, 5, 3, 3},
                      CodeSpec{CodeFamily::XXZZ, 3, 5, 2},
                      CodeSpec{CodeFamily::XXZZ, 5, 5, 2}));

// --- radiation field properties ---------------------------------------------

class RadiationField : public ::testing::TestWithParam<std::string> {};

TEST_P(RadiationField, FieldIsMaximalAtRootAndMonotoneInDistance) {
  const Graph g = make_topology(GetParam());
  const RadiationModel model;
  const auto dist = g.bfs_distances(0);
  const auto probs = model.qubit_probabilities(g, 0, 1.0);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
  for (std::size_t a = 0; a < g.num_nodes(); ++a) {
    for (std::size_t b = 0; b < g.num_nodes(); ++b) {
      if (dist[a] < dist[b]) {
        EXPECT_GE(probs[a], probs[b]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, RadiationField,
                         ::testing::Values("linear:12", "mesh:5x6", "cairo",
                                           "brooklyn", "complete:10"));

}  // namespace
}  // namespace radsurf
