#include "stab/frame_sim.hpp"

#include <gtest/gtest.h>

#include "stab/reference.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

TEST(FrameSim, NoNoiseMeansNoFlips) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  c.mr(0);
  FrameSimulator sim(c, 128);
  Rng rng(1);
  const MeasurementFlips flips = sim.run(rng);
  ASSERT_EQ(flips.size(), 3u);
  for (const auto& row : flips) EXPECT_TRUE(row.none());
}

TEST(FrameSim, DeterministicXBeforeMeasureDoesNotFlip) {
  // Deterministic gates are part of the reference; frames ignore them.
  Circuit c;
  c.x(0);
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(2);
  EXPECT_TRUE(sim.run(rng)[0].none());
}

TEST(FrameSim, XErrorAlwaysFlips) {
  Circuit c;
  c.append(Gate::X_ERROR, {0}, {1.0});
  c.m(0);
  FrameSimulator sim(c, 100);
  Rng rng(3);
  const auto flips = sim.run(rng);
  EXPECT_EQ(flips[0].popcount(), 100u);
}

TEST(FrameSim, XErrorRateAcrossShots) {
  Circuit c;
  c.append(Gate::X_ERROR, {0}, {0.25});
  c.m(0);
  FrameSimulator sim(c, 4096);
  Rng rng(4);
  const auto flips = sim.run(rng);
  EXPECT_NEAR(flips[0].popcount() / 4096.0, 0.25, 0.03);
}

TEST(FrameSim, ErrorPropagatesThroughCnot) {
  // X on control before CX flips both measurements.
  Circuit c;
  c.append(Gate::X_ERROR, {0}, {1.0});
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  FrameSimulator sim(c, 64);
  Rng rng(5);
  const auto flips = sim.run(rng);
  EXPECT_EQ(flips[0].popcount(), 64u);
  EXPECT_EQ(flips[1].popcount(), 64u);
}

TEST(FrameSim, ZErrorThroughHadamardFlips) {
  Circuit c;
  c.append(Gate::Z_ERROR, {0}, {1.0});
  c.h(0);
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(6);
  EXPECT_EQ(sim.run(rng)[0].popcount(), 64u);
}

TEST(FrameSim, ResetClearsFrame) {
  Circuit c;
  c.append(Gate::X_ERROR, {0}, {1.0});
  c.r(0);
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(7);
  EXPECT_TRUE(sim.run(rng)[0].none());
}

TEST(FrameSim, HeraldedResetAtDeterministicSiteUndoesFlip) {
  // Noisy shot: X flips |0> -> |1>, then a certain reset wipes it back to
  // |0>, which is exactly the reference value — so no record flip, handled
  // entirely inside the frame formalism (no residual shots).
  Circuit c;
  c.r(0);
  c.append(Gate::X_ERROR, {0}, {1.0});
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  FrameSimulator sim(c, 100);
  Rng rng(8);
  BitVec residual(100);
  const MeasurementFlips flips = sim.run(rng, &residual);
  EXPECT_TRUE(flips[0].none());
  EXPECT_TRUE(residual.none());
}

TEST(FrameSim, HeraldedResetOntoExcitedReference) {
  // Reference holds |1> at the reset site: a heralded reset produces |0>,
  // i.e. a guaranteed flip relative to the reference.
  Circuit c;
  c.r(0);
  c.x(0);
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  FrameSimulator sim(c, 100);
  Rng rng(8);
  BitVec residual(100);
  const MeasurementFlips flips = sim.run(rng, &residual);
  EXPECT_EQ(flips[0].popcount(), 100u);
  EXPECT_TRUE(residual.none());
}

TEST(FrameSim, ResetAtReferenceRandomSiteFlagsResidual) {
  // After H the reference outcome of qubit 0 is random: the reset cannot
  // be expressed as a frame update, so every heralded shot must be flagged
  // for an exact re-run.
  Circuit c;
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(8);
  BitVec residual(64);
  sim.run(rng, &residual);
  EXPECT_EQ(residual.popcount(), 64u);
}

TEST(FrameSim, ResetAtReferenceRandomSiteWithoutMaskThrows) {
  Circuit c;
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(8);
  EXPECT_THROW(sim.run(rng), CircuitError);
}

TEST(FrameSim, UnheraldedResetsLeaveNoTrace) {
  // p = 0 reset sites must neither flag residual shots nor perturb frames.
  Circuit c;
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {0.0});
  c.m(0);
  FrameSimulator sim(c, 64);
  Rng rng(8);
  BitVec residual(64);
  const MeasurementFlips flips = sim.run(rng, &residual);
  EXPECT_TRUE(residual.none());
  EXPECT_TRUE(flips[0].none());
}

TEST(FrameSim, PartialHeraldOnlyFlagsHeraldedShots) {
  Circuit c;
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {0.25});
  c.m(0);
  FrameSimulator sim(c, 4096);
  Rng rng(8);
  BitVec residual(4096);
  sim.run(rng, &residual);
  const double frac =
      static_cast<double>(residual.popcount()) / residual.size();
  EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(FrameSim, BiasedFillStatistics) {
  Rng rng(9);
  BitVec bits(20000);
  FrameSimulator::fill_biased(bits, 0.1, rng);
  EXPECT_NEAR(bits.popcount() / 20000.0, 0.1, 0.01);
  FrameSimulator::fill_biased(bits, 0.7, rng);
  EXPECT_NEAR(bits.popcount() / 20000.0, 0.7, 0.02);
  FrameSimulator::fill_biased(bits, 0.0, rng);
  EXPECT_TRUE(bits.none());
  FrameSimulator::fill_biased(bits, 1.0, rng);
  EXPECT_EQ(bits.popcount(), 20000u);
}

TEST(FrameSim, UniformFillKeepsPadding) {
  Rng rng(10);
  BitVec bits(70);  // 6 bits of padding in the last word
  FrameSimulator::fill_uniform(bits, rng);
  // Padding must stay zero: popcount over logical bits only.
  std::size_t manual = 0;
  for (std::size_t i = 0; i < 70; ++i) manual += bits.get(i);
  EXPECT_EQ(bits.popcount(), manual);
}

// Cross-validation: frame sampling and exact tableau sampling must agree on
// every noiseless-deterministic statistic (detector semantics).  Frame
// simulation pins intrinsically-random measurement marginals to the
// reference, so only parities that are deterministic at zero noise are
// compared — which is exactly what the decoder consumes.
TEST(FrameSim, MatchesTableauOnDeterministicParities) {
  Circuit c;
  c.r(0);
  c.r(1);
  c.r(2);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.append(Gate::DEPOLARIZE1, {0, 1, 2}, {0.15});
  c.m(0);
  c.m(1);
  c.m(2);

  // GHZ parities m0^m1 and m1^m2 are 0 in the absence of noise.
  const std::size_t shots = 8000;
  TableauSimulator tsim(c);
  Rng trng(11);
  double t_par01 = 0, t_par12 = 0, t_both = 0;
  for (std::size_t s = 0; s < shots; ++s) {
    const BitVec rec = tsim.sample(trng);
    const bool p01 = rec.get(0) ^ rec.get(1);
    const bool p12 = rec.get(1) ^ rec.get(2);
    t_par01 += p01;
    t_par12 += p12;
    t_both += p01 && p12;
  }
  MeasurementSampler msampler(c);
  Rng frng(12);
  const auto records = msampler.sample(shots, frng);
  double f_par01 = 0, f_par12 = 0, f_both = 0;
  for (const BitVec& rec : records) {
    const bool p01 = rec.get(0) ^ rec.get(1);
    const bool p12 = rec.get(1) ^ rec.get(2);
    f_par01 += p01;
    f_par12 += p12;
    f_both += p01 && p12;
  }
  EXPECT_NEAR(t_par01 / shots, f_par01 / shots, 0.025);
  EXPECT_NEAR(t_par12 / shots, f_par12 / shots, 0.025);
  EXPECT_NEAR(t_both / shots, f_both / shots, 0.02);
}

TEST(FrameSim, RepeatedRandomMeasurementsAgreeWithinShot) {
  // H then M twice: the raw marginal is pinned to the reference (a frame-
  // simulation property), but the within-shot correlation — the
  // deterministic parity m1^m2 = 0 — must hold exactly.
  Circuit c;
  c.h(0);
  c.m(0);
  c.m(0);
  MeasurementSampler sampler(c);
  Rng rng(13);
  for (const BitVec& rec : sampler.sample(512, rng))
    EXPECT_EQ(rec.get(0), rec.get(1));
}

}  // namespace
}  // namespace radsurf
