// Golden-equivalence tests of the spec runner: running the shipped
// specs/fig*.json files through the scenario registry must reproduce the
// same CSV rows as the legacy figure drivers (the core experiment
// functions the pre-registry binaries called), on identical shots/seed.
// Also pins the campaign executor's determinism and per-cell
// checkpoint/resume semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "cli/checkpoint.hpp"
#include "cli/grid.hpp"
#include "cli/registry.hpp"
#include "cli/spec.hpp"
#include "core/experiments.hpp"

namespace radsurf {
namespace {

namespace fs = std::filesystem;

ScenarioSpec shipped_spec(const std::string& name) {
  const fs::path path = fs::path(RADSURF_SOURCE_DIR) / "specs" /
                        (name + ".json");
  return ScenarioSpec::from_file(path.string());
}

// Tiny budget so the four figure campaigns stay test-suite fast; the
// equivalence claim is independent of the budget because both sides run
// the same shots/seed.
ExperimentOptions tiny_options() {
  unsetenv("RADSURF_SHOTS");
  unsetenv("RADSURF_FAST");
  ExperimentOptions opts;
  opts.shots = 20;
  opts.seed = 7;
  return opts;
}

std::string run_shipped_spec(const std::string& name,
                             const ExperimentOptions& opts) {
  ScenarioSpec spec = shipped_spec(name);
  spec.shots = opts.shots;
  spec.seed = opts.seed;
  return make_scenario(spec)->run(nullptr).table.to_csv();
}

TEST(SpecEquivalence, Fig5MatchesLegacyDriver) {
  const ExperimentOptions opts = tiny_options();
  EXPECT_EQ(run_shipped_spec("fig5", opts),
            fig5_noise_vs_radiation(opts).table.to_csv());
}

TEST(SpecEquivalence, Fig6MatchesLegacyDriver) {
  const ExperimentOptions opts = tiny_options();
  EXPECT_EQ(run_shipped_spec("fig6", opts),
            fig6_code_distance(opts).table.to_csv());
}

TEST(SpecEquivalence, Fig7MatchesLegacyDriver) {
  const ExperimentOptions opts = tiny_options();
  EXPECT_EQ(run_shipped_spec("fig7", opts),
            fig7_fault_spread(opts).table.to_csv());
}

TEST(SpecEquivalence, Fig8MatchesLegacyDriver) {
  const ExperimentOptions opts = tiny_options();
  EXPECT_EQ(run_shipped_spec("fig8", opts),
            fig8_architecture(opts).table.to_csv());
}

TEST(SpecEquivalence, Fig3And4MatchTheGoldenFixtureDrivers) {
  // fig3/fig4 are deterministic; the spec path must hit the exact golden
  // tables test_golden_figures.cpp pins for the core functions.
  ScenarioSpec spec3;
  spec3.scenario = "fig3";
  EXPECT_EQ(make_scenario(spec3)->run(nullptr).table.to_csv(),
            fig3_temporal_decay().table.to_csv());
  ScenarioSpec spec4;
  spec4.scenario = "fig4";
  EXPECT_EQ(make_scenario(spec4)->run(nullptr).table.to_csv(),
            fig4_spatial_decay().table.to_csv());
}

// --- campaign executor determinism and resume ------------------------------

ScenarioSpec tiny_grid_spec() {
  ScenarioSpec spec;
  spec.scenario = "grid";
  spec.shots = 24;
  spec.seed = 99;
  spec.params = JsonValue::parse(R"({
    "configs": [{"code": "repetition:5", "arch": "mesh:5x2"}],
    "decoders": ["mwpm", "greedy"],
    "error_rates": [0.001, 0.01],
    "injections": [
      {"kind": "intrinsic"},
      {"kind": "radiation", "root": 2, "intensity": 0.8},
      {"kind": "erasure", "qubits": [1, 2]}
    ]
  })");
  return spec;
}

TEST(GridCampaign, DeterministicAcrossRuns) {
  const ScenarioSpec spec = tiny_grid_spec();
  const std::string first = make_scenario(spec)->run(nullptr).table.to_csv();
  const std::string second =
      make_scenario(spec)->run(nullptr).table.to_csv();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("radiation(root=2"), std::string::npos);
}

TEST(GridCampaign, CellSeedIsPureFunctionOfKeyAndSeed) {
  EXPECT_EQ(grid_cell_seed(1, "a"), grid_cell_seed(1, "a"));
  EXPECT_NE(grid_cell_seed(1, "a"), grid_cell_seed(2, "a"));
  EXPECT_NE(grid_cell_seed(1, "a"), grid_cell_seed(1, "b"));
}

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(GridCampaign, CheckpointResumeReplaysWithoutRecompute) {
  const ScenarioSpec spec = tiny_grid_spec();
  TempPath ckpt("radsurf_test_grid.ckpt.jsonl");

  JsonlCheckpointSink first_sink(ckpt.path, spec.fingerprint());
  const ExperimentReport first = make_scenario(spec)->run(&first_sink);
  EXPECT_EQ(first_sink.loaded(), 0u);

  // Second run resumes every cell: identical table, no recompute (the
  // note records 0 engines built).
  JsonlCheckpointSink second_sink(ckpt.path, spec.fingerprint());
  EXPECT_EQ(second_sink.loaded(), first.table.num_rows());
  const ExperimentReport second = make_scenario(spec)->run(&second_sink);
  EXPECT_EQ(second.table.to_csv(), first.table.to_csv());
  ASSERT_FALSE(second.notes.empty());
  EXPECT_NE(second.notes[0].find("0 engines built"), std::string::npos)
      << second.notes[0];
  EXPECT_NE(second.notes[0].find("12 resumed"), std::string::npos)
      << second.notes[0];
}

TEST(GridCampaign, ResumedCellsAreTakenFromTheFileVerbatim) {
  // Poison one checkpointed row; the resumed run must replay the poisoned
  // row (proof that lookup short-circuits the computation).
  const ScenarioSpec spec = tiny_grid_spec();
  TempPath ckpt("radsurf_test_grid_poison.ckpt.jsonl");
  {
    JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
    (void)make_scenario(spec)->run(&sink);
  }
  std::ifstream in(ckpt.path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const std::string shots_cell = "intrinsic\",\"24\"";
  const auto cell = content.find(shots_cell);
  ASSERT_NE(cell, std::string::npos);
  content.replace(cell, shots_cell.size(), "intrinsic\",\"POISON\"");
  std::ofstream(ckpt.path) << content;

  JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
  const ExperimentReport resumed = make_scenario(spec)->run(&sink);
  EXPECT_NE(resumed.table.to_csv().find("POISON"), std::string::npos);
}

TEST(GridCampaign, CheckpointFromDifferentSpecIsRejected) {
  const ScenarioSpec spec = tiny_grid_spec();
  TempPath ckpt("radsurf_test_grid_mismatch.ckpt.jsonl");
  {
    JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
    sink.emit("k", {"v"});
  }
  ScenarioSpec changed = spec;
  changed.shots = 1000;  // different sampling plan
  try {
    JsonlCheckpointSink sink(ckpt.path, changed.fingerprint());
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--fresh"), std::string::npos)
        << e.what();
  }
  // fresh=true truncates and proceeds.
  JsonlCheckpointSink sink(ckpt.path, changed.fingerprint(), /*fresh=*/true);
  EXPECT_EQ(sink.loaded(), 0u);
}

TEST(GridCampaign, WorkerPoolProducesByteIdenticalTables) {
  // Cell seeds are pure functions of (spec seed, cell key) and the table
  // is assembled in cell-enumeration order, so any worker count must
  // produce the same bytes.
  ScenarioSpec spec = tiny_grid_spec();
  spec.jobs = 1;
  const std::string serial = make_scenario(spec)->run(nullptr).table.to_csv();
  spec.jobs = 4;
  const std::string pooled = make_scenario(spec)->run(nullptr).table.to_csv();
  EXPECT_EQ(serial, pooled);
  spec.jobs = 3;  // does not divide the combo count evenly
  EXPECT_EQ(serial, make_scenario(spec)->run(nullptr).table.to_csv());
}

TEST(GridCampaign, MidCampaignResumeIsWorkerCountIndependent) {
  // Simulate a campaign killed mid-flight: keep the header and the first
  // five checkpointed cells, then resume under a different worker count.
  // The resumed table must be byte-identical to an uninterrupted serial
  // run, and exactly the five kept cells must be replayed.
  ScenarioSpec spec = tiny_grid_spec();
  TempPath ckpt("radsurf_test_grid_jobs.ckpt.jsonl");
  std::string full_csv;
  {
    JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
    full_csv = make_scenario(spec)->run(&sink).table.to_csv();
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(ckpt.path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 6u);  // header + 12 cells
  {
    std::ofstream out(ckpt.path, std::ios::trunc);
    for (std::size_t i = 0; i < 6; ++i) out << lines[i] << "\n";
  }
  spec.jobs = 4;  // jobs is excluded from the fingerprint: resume works
  JsonlCheckpointSink resumed_sink(ckpt.path, spec.fingerprint());
  EXPECT_EQ(resumed_sink.loaded(), 5u);
  const ExperimentReport resumed = make_scenario(spec)->run(&resumed_sink);
  EXPECT_EQ(resumed.table.to_csv(), full_csv);
  ASSERT_FALSE(resumed.notes.empty());
  EXPECT_NE(resumed.notes[0].find("5 resumed"), std::string::npos)
      << resumed.notes[0];
}

TEST(GridCampaign, TornTrailingLineIsDropped) {
  const ScenarioSpec spec = tiny_grid_spec();
  TempPath ckpt("radsurf_test_grid_torn.ckpt.jsonl");
  {
    JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
    sink.emit("cell-a", {"x", "y"});
    sink.emit("cell-b", {"z", "w"});
  }
  std::ofstream(ckpt.path, std::ios::app) << "{\"cell\":\"cell-c\",\"ro";
  {
    JsonlCheckpointSink sink(ckpt.path, spec.fingerprint());
    EXPECT_EQ(sink.loaded(), 2u);
    std::vector<std::string> row;
    EXPECT_TRUE(sink.lookup("cell-a", &row));
    EXPECT_EQ(row, (std::vector<std::string>{"x", "y"}));
    EXPECT_FALSE(sink.lookup("cell-c", nullptr));
    // Recomputing the torn cell must not glue onto the partial line...
    sink.emit("cell-c", {"q"});
  }
  // ...so a third open sees all three cells, not a corrupted tail.
  JsonlCheckpointSink reopened(ckpt.path, spec.fingerprint());
  EXPECT_EQ(reopened.loaded(), 3u);
  std::vector<std::string> row;
  EXPECT_TRUE(reopened.lookup("cell-c", &row));
  EXPECT_EQ(row, (std::vector<std::string>{"q"}));
}

}  // namespace
}  // namespace radsurf
