// Sparse-vs-dense MWPM equivalence.
//
// The sparse backend (lazy on-demand Dijkstra rows + union-find defect
// clustering + subset-DP small-cluster matching) must reproduce the dense
// eager all-pairs oracle bit for bit: same distances, same observable
// parities, same predictions on enumerated defect sets, and the same
// reconstructed correction paths that SlidingWindowDecoder's partial
// commits consume.
#include "decoder/mwpm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"

namespace radsurf {
namespace {

MatchingGraph circuit_graph(const SurfaceCode& code, double p) {
  const Circuit noisy = DepolarizingModel{p}.apply(code.build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double matching_weight(const MwpmDecoder& dec,
                       const std::vector<MwpmMatch>& pairs) {
  double w = 0.0;
  for (const MwpmMatch& p : pairs) w += dec.distance(p.a, p.b);
  return w;
}

// Enumerated singles and pairs plus deterministic random k-subsets.
void expect_backends_agree(const MatchingGraph& g, std::uint64_t seed) {
  MwpmDecoder sparse(g);  // default: lazy + clustered
  MwpmDecoder dense(g, MwpmOptions{false, /*lazy=*/false, /*cluster=*/false});
  const auto nd = static_cast<std::uint32_t>(g.num_detectors());

  // Lazy tables must equal the eager ones wherever they are consulted.
  for (std::uint32_t a = 0; a < nd; a += 3)
    for (std::uint32_t b = 0; b < g.num_nodes(); b += 2) {
      EXPECT_DOUBLE_EQ(sparse.distance(a, b), dense.distance(a, b));
      EXPECT_EQ(sparse.path_observables(a, b), dense.path_observables(a, b));
    }

  for (std::uint32_t d = 0; d < nd; ++d)
    EXPECT_EQ(sparse.decode({d}), dense.decode({d})) << "defect " << d;

  for (std::uint32_t a = 0; a < nd; ++a)
    for (std::uint32_t b = a + 1; b < nd; ++b) {
      const std::vector<std::uint32_t> defects{a, b};
      ASSERT_EQ(sparse.decode(defects), dense.decode(defects))
          << "pair {" << a << ", " << b << "}";
    }

  Rng rng(seed);
  for (std::size_t k : {3u, 4u, 6u, 8u, 12u}) {
    if (k > nd) continue;
    for (int rep = 0; rep < 60; ++rep) {
      const auto defects = random_defects(nd, k, rng);
      ASSERT_EQ(sparse.decode(defects), dense.decode(defects))
          << "k=" << k << " rep=" << rep;
      // Equal minimum weight too (the prediction could in principle agree
      // by luck; the weight pins the matchings to the same optimum).
      EXPECT_NEAR(matching_weight(sparse, sparse.match_defects(defects)),
                  matching_weight(dense, dense.match_defects(defects)),
                  1e-6)
          << "k=" << k << " rep=" << rep;
    }
  }
}

TEST(SparseMwpm, MatchesDenseOnRepetition5) {
  expect_backends_agree(
      circuit_graph(RepetitionCode(5, RepetitionFlavor::BIT_FLIP), 1e-2), 5);
}

TEST(SparseMwpm, MatchesDenseOnRepetition9) {
  expect_backends_agree(
      circuit_graph(RepetitionCode(9, RepetitionFlavor::BIT_FLIP), 1e-2), 9);
}

TEST(SparseMwpm, MatchesDenseOnRepetition15) {
  expect_backends_agree(
      circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP), 2e-2),
      15);
}

TEST(SparseMwpm, MatchesDenseOnXxzz33) {
  expect_backends_agree(circuit_graph(XXZZCode(3, 3), 1e-2), 33);
}

TEST(SparseMwpm, PathReconstructionMatchesDense) {
  // track_paths predecessors feed SlidingWindowDecoder's partial commits;
  // lazy rows must reproduce the dense chains node for node.
  const auto g = circuit_graph(RepetitionCode(9, RepetitionFlavor::BIT_FLIP),
                               1e-2);
  MwpmDecoder sparse(g, MwpmOptions{true, true, true});
  MwpmDecoder dense(g, MwpmOptions{true, false, false});
  const auto nd = static_cast<std::uint32_t>(g.num_detectors());
  const std::uint32_t B = g.boundary_node();
  for (std::uint32_t a = 0; a < nd; a += 2) {
    for (std::uint32_t b = 0; b < nd; b += 3) {
      if (a == b || !std::isfinite(dense.distance(a, b))) continue;
      EXPECT_EQ(sparse.path_nodes(a, b), dense.path_nodes(a, b))
          << "path " << a << " -> " << b;
    }
    if (std::isfinite(dense.distance(a, B)))
      EXPECT_EQ(sparse.path_nodes(a, B), dense.path_nodes(a, B));
  }
}

TEST(SparseMwpm, ClustersPartitionDefectsAndComposePredictions) {
  const auto g = circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP),
                               1e-2);
  MwpmDecoder dec(g);
  Rng rng(7);
  for (int rep = 0; rep < 40; ++rep) {
    const auto defects =
        random_defects(g.num_detectors(), 8, rng);
    const auto clusters = dec.defect_clusters(defects);
    std::vector<std::uint32_t> flattened;
    std::uint64_t composed = 0;
    for (const auto& cluster : clusters) {
      flattened.insert(flattened.end(), cluster.begin(), cluster.end());
      composed ^= dec.decode_cluster(cluster);
    }
    std::sort(flattened.begin(), flattened.end());
    EXPECT_EQ(flattened, defects);
    EXPECT_EQ(composed, dec.decode(defects));
  }
}

TEST(SparseMwpm, LazyRowsGrowOnlyAroundTouchedDefects) {
  const auto g = circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP),
                               1e-2);
  MwpmDecoder dec(g);
  EXPECT_EQ(dec.rows_materialized(), 0u);
  (void)dec.decode({3, 4});
  const std::size_t after_first = dec.rows_materialized();
  EXPECT_GE(after_first, 2u);
  EXPECT_LE(after_first, 2u);  // only the two defect rows
  (void)dec.decode({3, 4});    // repeat decode touches nothing new
  EXPECT_EQ(dec.rows_materialized(), after_first);
  EXPECT_LT(after_first, g.num_nodes());
}

TEST(SparseMwpm, DpMatcherAgreesWithBlossomOnLargeClusters) {
  // Force defect sets past the subset-DP cap so the blossom path engages
  // on the same graphs, and pin it against the dense oracle.
  const auto g = circuit_graph(RepetitionCode(15, RepetitionFlavor::BIT_FLIP),
                               3e-2);
  MwpmDecoder sparse(g);
  MwpmDecoder dense(g, MwpmOptions{false, false, false});
  Rng rng(21);
  for (int rep = 0; rep < 15; ++rep) {
    const auto defects = random_defects(g.num_detectors(), 14, rng);
    ASSERT_EQ(sparse.decode(defects), dense.decode(defects)) << rep;
  }
}

}  // namespace
}  // namespace radsurf
