#include "decoder/decode_cache.hpp"
#include "decoder/decoder.hpp"
#include "decoder/greedy.hpp"
#include "decoder/mwpm.hpp"
#include "decoder/union_find.hpp"

#include <gtest/gtest.h>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

// A hand-built line of detectors 0-1-2 with boundary edges at both ends;
// the observable is crossed only by the left boundary edge.
MatchingGraph line_graph() {
  DetectorErrorModel dem;
  dem.num_detectors = 3;
  dem.num_observables = 1;
  dem.mechanisms = {
      {0.01, {0}, 1},     // left boundary, crosses observable
      {0.01, {0, 1}, 0},
      {0.01, {1, 2}, 0},
      {0.01, {2}, 0},     // right boundary
  };
  return MatchingGraph::from_dem(dem);
}

TEST(Mwpm, EmptyDefectsNoFlip) {
  const auto g = line_graph();
  MwpmDecoder dec(g);
  EXPECT_EQ(dec.decode({}), 0u);
}

TEST(Mwpm, PairedDefectsMatchInternally) {
  const auto g = line_graph();
  MwpmDecoder dec(g);
  // Defects 0,1: matching them internally (one edge) is cheaper than two
  // boundary paths; no observable crossing.
  EXPECT_EQ(dec.decode({0, 1}), 0u);
}

TEST(Mwpm, SingleDefectTakesNearestBoundary) {
  const auto g = line_graph();
  MwpmDecoder dec(g);
  // Defect 0: left boundary is 1 edge (crosses the observable); right is 3.
  EXPECT_EQ(dec.decode({0}), 1u);
  // Defect 2: right boundary is cheapest, no observable.
  EXPECT_EQ(dec.decode({2}), 0u);
}

TEST(Mwpm, DistanceTablesSymmetric) {
  const auto g = line_graph();
  MwpmDecoder dec(g);
  for (std::uint32_t a = 0; a < 4; ++a)
    for (std::uint32_t b = 0; b < 4; ++b)
      EXPECT_DOUBLE_EQ(dec.distance(a, b), dec.distance(b, a));
  EXPECT_DOUBLE_EQ(dec.distance(1, 1), 0.0);
  // Triangle inequality on a path graph.
  EXPECT_LE(dec.distance(0, 2),
            dec.distance(0, 1) + dec.distance(1, 2) + 1e-12);
}

TEST(Mwpm, PathObservablesComposeAlongPath) {
  const auto g = line_graph();
  MwpmDecoder dec(g);
  const std::uint32_t B = g.boundary_node();
  // Path 0 -> B via left edge crosses the observable once.
  EXPECT_EQ(dec.path_observables(0, B), 1u);
  // 0 -> 1 internal path: no crossing.
  EXPECT_EQ(dec.path_observables(0, 1), 0u);
}

// Exact half-distance guarantee on the phenomenological 1D chain with
// uniform weights: detectors 0..d-2 in a line, boundary at both ends, each
// data edge crossing the observable.  MWPM must correct every error set of
// weight <= floor((d-1)/2).
class ChainGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(ChainGuarantee, CorrectsEveryHalfDistanceErrorSet) {
  const int d = GetParam();
  const int num_dets = d - 1;
  DetectorErrorModel dem;
  dem.num_detectors = static_cast<std::size_t>(num_dets);
  dem.num_observables = 1;
  // Data qubit q (0..d-1) flips detectors {q-1, q} (clipped) and the
  // observable.
  std::vector<std::vector<std::uint32_t>> qubit_dets(d);
  for (int q = 0; q < d; ++q) {
    std::vector<std::uint32_t> dets;
    if (q - 1 >= 0) dets.push_back(static_cast<std::uint32_t>(q - 1));
    if (q < num_dets) dets.push_back(static_cast<std::uint32_t>(q));
    qubit_dets[q] = dets;
    dem.mechanisms.push_back({0.01, dets, 1});
  }
  MwpmDecoder decoder(MatchingGraph::from_dem(dem));

  // Exhaustively test every error set of weight <= (d-1)/2.
  const int max_k = (d - 1) / 2;
  for (int mask = 1; mask < (1 << d); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) > max_k) continue;
    std::vector<int> det_parity(num_dets, 0);
    int obs = 0;
    for (int q = 0; q < d; ++q) {
      if (!(mask >> q & 1)) continue;
      obs ^= 1;
      for (std::uint32_t dt : qubit_dets[q]) det_parity[dt] ^= 1;
    }
    std::vector<std::uint32_t> defects;
    for (int dt = 0; dt < num_dets; ++dt)
      if (det_parity[dt]) defects.push_back(static_cast<std::uint32_t>(dt));
    EXPECT_EQ(decoder.decode(defects), static_cast<std::uint64_t>(obs))
        << "d=" << d << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, ChainGuarantee,
                         ::testing::Values(3, 5, 7, 9, 11));

// Circuit-level repetition-code end-to-end: MWPM corrects half-distance
// error sets injected between the rounds.  Circuit-level matching graphs
// have heterogeneous weights and lossy parallel-edge observable
// attribution (as in PyMatching), so correction is near-certain rather
// than guaranteed: k = 1 must always succeed, larger sets statistically.
class RepetitionCorrection : public ::testing::TestWithParam<int> {};

TEST_P(RepetitionCorrection, CorrectsUpToHalfDistance) {
  const int d = GetParam();
  const RepetitionCode code(d, RepetitionFlavor::BIT_FLIP);
  const Circuit base = code.build();
  const DetectorSet ds = DetectorSet::compile(base);
  TableauSimulator ref_sim(base);
  const BitVec ref = ref_sim.reference_sample();

  // Decoder graph from the standard intrinsic instrumentation.
  const auto dem = DetectorErrorModel::from_circuit(
      DepolarizingModel{1e-3}.apply(base));
  const MatchingGraph mg = MatchingGraph::from_dem(dem);
  MwpmDecoder decoder(mg);

  const int max_errors = (d - 1) / 2;
  Rng pick(42u + static_cast<unsigned>(d));
  int failures = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Choose up to max_errors distinct data qubits; inject X between the
    // stabilisation rounds (right after the logical X block — a location
    // the decoder's error model covers).
    std::vector<std::uint32_t> qubits;
    const int k = 1 + static_cast<int>(pick.below(
                          static_cast<std::uint64_t>(max_errors)));
    while (qubits.size() < static_cast<std::size_t>(k)) {
      const auto q = static_cast<std::uint32_t>(pick.below(d));
      if (std::find(qubits.begin(), qubits.end(), q) == qubits.end())
        qubits.push_back(q);
    }
    Circuit injected(base.num_qubits());
    std::size_t x_streak = 0;
    bool placed = false;
    for (const Instruction& ins : base.instructions()) {
      if (gate_info(ins.gate).is_annotation) {
        injected.append_annotation(ins.gate, ins.lookbacks, ins.args);
        continue;
      }
      injected.append(ins.gate, ins.targets, ins.args);
      if (!placed && ins.gate == Gate::X &&
          ++x_streak == static_cast<std::size_t>(d)) {
        for (auto q : qubits) injected.append(Gate::X_ERROR, {q}, {1.0});
        placed = true;
      }
    }
    ASSERT_TRUE(placed);
    TableauSimulator sim(injected);
    Rng rng(7u * trial + 1);
    const BitVec rec = sim.sample(rng);
    const auto defects = ds.defects(rec, ref);
    const std::uint64_t predicted = decoder.decode(defects);
    const std::uint64_t actual = ds.observable_values(rec, ref);
    if (k == 1) {
      EXPECT_EQ(predicted, actual) << "d=" << d << " trial=" << trial;
    }
    failures += (predicted != actual);
  }
  // Heterogeneous circuit-level weights make some multi-error sets
  // genuinely likelier to have come from a different (wrong-parity)
  // explanation; MWPM then "fails" by being a correct min-weight matcher.
  // Bound the rate rather than demand perfection.
  EXPECT_LE(failures, 10) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Distances, RepetitionCorrection,
                         ::testing::Values(3, 5, 7, 9, 11));

// A logical-X-weight chain of errors must NOT be correctable (it commutes
// with every stabilizer): decoder prediction misses exactly then.
TEST(Mwpm, FullLogicalChainDefeatsDecoder) {
  const int d = 5;
  const RepetitionCode code(d, RepetitionFlavor::BIT_FLIP);
  const Circuit base = code.build();
  const DetectorSet ds = DetectorSet::compile(base);
  TableauSimulator ref_sim(base);
  const BitVec ref = ref_sim.reference_sample();
  const auto dem = DetectorErrorModel::from_circuit(
      DepolarizingModel{1e-3}.apply(base));
  MwpmDecoder decoder(MatchingGraph::from_dem(dem));

  Circuit injected(base.num_qubits());
  std::size_t resets_seen = 0;
  bool placed = false;
  for (const Instruction& ins : base.instructions()) {
    if (gate_info(ins.gate).is_annotation) {
      injected.append_annotation(ins.gate, ins.lookbacks, ins.args);
      continue;
    }
    injected.append(ins.gate, ins.targets, ins.args);
    if (!placed && ins.gate == Gate::R &&
        ++resets_seen == code.num_qubits()) {
      for (std::uint32_t q = 0; q < static_cast<std::uint32_t>(d); ++q)
        injected.append(Gate::X_ERROR, {q}, {1.0});
      placed = true;
    }
  }
  TableauSimulator sim(injected);
  Rng rng(3);
  const BitVec rec = sim.sample(rng);
  // No defects (X^(x)d commutes with all ZZ stabilizers)...
  EXPECT_TRUE(ds.defects(rec, ref).empty());
  // ...but the observable flipped: an undetectable logical error.
  EXPECT_EQ(ds.observable_values(rec, ref), 1u);
  EXPECT_EQ(decoder.decode({}), 0u);
}

// Decoder ablations run on the same graphs and defects.
TEST(Decoders, FactoryProducesAllKinds) {
  const auto g = line_graph();
  for (auto kind :
       {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
    const auto dec = make_decoder(kind, g);
    ASSERT_NE(dec, nullptr);
    EXPECT_EQ(dec->name(), decoder_kind_name(kind));
    EXPECT_EQ(dec->decode({}), 0u);
    // Any prediction is a valid mask; just exercise the paths.
    (void)dec->decode({0});
    (void)dec->decode({0, 1});
    (void)dec->decode({0, 1, 2});
  }
}

TEST(UnionFind, MatchesMwpmOnIsolatedPairs) {
  const auto g = line_graph();
  MwpmDecoder mwpm(g);
  UnionFindDecoder uf(g);
  EXPECT_EQ(uf.decode({0, 1}), mwpm.decode({0, 1}));
  EXPECT_EQ(uf.decode({1, 2}), mwpm.decode({1, 2}));
  EXPECT_EQ(uf.decode({}), 0u);
}

TEST(Greedy, AgreesWithMwpmOnTrivialCases) {
  const auto g = line_graph();
  MwpmDecoder mwpm(g);
  GreedyDecoder greedy(g);
  EXPECT_EQ(greedy.decode({0}), mwpm.decode({0}));
  EXPECT_EQ(greedy.decode({2}), mwpm.decode({2}));
  EXPECT_EQ(greedy.decode({0, 1}), mwpm.decode({0, 1}));
}

// Accuracy ordering on a real code under moderate noise: MWPM should be at
// least as accurate as greedy (statistically).
TEST(Decoders, MwpmAtLeastAsAccurateAsGreedy) {
  const RepetitionCode code(7, RepetitionFlavor::BIT_FLIP);
  const Circuit base = code.build();
  const Circuit noisy = DepolarizingModel{0.03}.apply(base);
  const DetectorSet ds = DetectorSet::compile(base);
  TableauSimulator ref_sim(base);
  const BitVec ref = ref_sim.reference_sample();
  const auto dem = DetectorErrorModel::from_circuit(noisy);
  const MatchingGraph mg = MatchingGraph::from_dem(dem);
  MwpmDecoder mwpm(mg);
  GreedyDecoder greedy(mg);

  TableauSimulator sim(noisy);
  Rng rng(11);
  int mwpm_errors = 0, greedy_errors = 0;
  const int shots = 1200;
  for (int s = 0; s < shots; ++s) {
    const BitVec rec = sim.sample(rng);
    const auto defects = ds.defects(rec, ref);
    const auto actual = ds.observable_values(rec, ref);
    mwpm_errors += (mwpm.decode(defects) ^ actual) & 1;
    greedy_errors += (greedy.decode(defects) ^ actual) & 1;
  }
  EXPECT_LE(mwpm_errors, greedy_errors + 25);  // statistical slack
}

TEST(DecodeCache, PredictionsMatchInnerDecoderExactly) {
  const Circuit noisy = DepolarizingModel{2e-2}.apply(
      RepetitionCode(5, RepetitionFlavor::BIT_FLIP).build());
  const auto graph =
      MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
  MwpmDecoder plain(graph);
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  EXPECT_EQ(cached.name(), inner.name() + "+cache");
  Rng rng(3);
  const std::size_t nd = graph.num_detectors();
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint32_t> defects;
    for (std::uint32_t d = 0; d < nd; ++d)
      if (rng.bernoulli(0.2)) defects.push_back(d);
    if (defects.size() % 2) defects.pop_back();
    EXPECT_EQ(cached.decode(defects), plain.decode(defects));
  }
  const DecodeCacheStats stats = cached.stats();
  EXPECT_GT(stats.lookups, 0u);
  // Repeats of small syndromes are common over 400 draws.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(cached.size(), 0u);
  EXPECT_EQ(stats.lookups - stats.hits, cached.size());
}

TEST(DecodeCache, AutoBypassTripsOnColdStream) {
  // A long-enough stream of (essentially) never-repeating syndromes must
  // trip the sticky bypass: probing stops, counters freeze, and
  // predictions keep matching the inner decoder bit for bit.
  const Circuit noisy = DepolarizingModel{2e-2}.apply(
      RepetitionCode(25, RepetitionFlavor::BIT_FLIP).build());
  const auto graph =
      MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
  MwpmDecoder plain(graph);
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  cached.enable_auto_bypass();
  EXPECT_FALSE(cached.bypassed());
  Rng rng(41);
  const std::size_t nd = graph.num_detectors();
  const auto draw = [&] {
    std::vector<std::uint32_t> defects;
    for (std::uint32_t d = 0; d < nd; ++d)
      if (rng.bernoulli(0.3)) defects.push_back(d);
    if (defects.size() % 2) defects.pop_back();
    return defects;
  };
  for (std::uint64_t i = 0; i < CachingDecoder::kBypassProbeWindow + 64;
       ++i) {
    const auto defects = draw();
    if (defects.empty()) continue;
    EXPECT_EQ(cached.decode(defects), plain.decode(defects));
  }
  EXPECT_TRUE(cached.bypassed());
  const DecodeCacheStats frozen = cached.stats();
  EXPECT_LT(frozen.hit_rate(), CachingDecoder::kBypassFloor);
  // Post-trip decodes neither probe nor count.
  for (int i = 0; i < 32; ++i) {
    const auto defects = draw();
    if (defects.empty()) continue;
    EXPECT_EQ(cached.decode(defects), plain.decode(defects));
  }
  EXPECT_EQ(cached.stats().lookups, frozen.lookups);
}

TEST(DecodeCache, AutoBypassStaysArmedOnHotStream) {
  const Circuit noisy = DepolarizingModel{2e-2}.apply(
      RepetitionCode(5, RepetitionFlavor::BIT_FLIP).build());
  const auto graph =
      MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  cached.enable_auto_bypass();
  const std::vector<std::uint32_t> defects{0, 1};
  const std::uint64_t expected = cached.decode(defects);
  for (std::uint64_t i = 0; i < CachingDecoder::kBypassProbeWindow + 512;
       ++i)
    EXPECT_EQ(cached.decode(defects), expected);
  EXPECT_FALSE(cached.bypassed());
  EXPECT_GT(cached.stats().hit_rate(), 0.99);
}

TEST(DecodeCache, BypassRequiresOptIn) {
  const Circuit noisy = DepolarizingModel{2e-2}.apply(
      RepetitionCode(25, RepetitionFlavor::BIT_FLIP).build());
  const auto graph =
      MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);  // auto-bypass NOT enabled
  Rng rng(43);
  const std::size_t nd = graph.num_detectors();
  for (std::uint64_t i = 0; i < CachingDecoder::kBypassProbeWindow + 64;
       ++i) {
    std::vector<std::uint32_t> defects;
    for (std::uint32_t d = 0; d < nd; ++d)
      if (rng.bernoulli(0.3)) defects.push_back(d);
    if (defects.size() % 2) defects.pop_back();
    if (!defects.empty()) cached.decode(defects);
  }
  EXPECT_FALSE(cached.bypassed());
}

TEST(DecodeCache, EmptySyndromeBypassesCounters) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(3, RepetitionFlavor::BIT_FLIP).build());
  const auto graph =
      MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
  MwpmDecoder inner(graph);
  CachingDecoder cached(inner);
  EXPECT_EQ(cached.decode({}), 0u);
  EXPECT_EQ(cached.stats().lookups, 0u);
}

}  // namespace
}  // namespace radsurf
