#include "arch/topologies.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace radsurf {
namespace {

TEST(Topologies, Linear) {
  const Graph g = make_linear(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.bfs_distances(0)[4], 4u);
}

TEST(Topologies, Mesh) {
  const Graph g = make_mesh(5, 6);
  EXPECT_EQ(g.num_nodes(), 30u);
  // Grid edges: r*(c-1) + c*(r-1) = 5*5 + 6*4 = 49.
  EXPECT_EQ(g.num_edges(), 49u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_degree(), 4u);
  // Corner-to-corner manhattan distance.
  EXPECT_EQ(g.bfs_distances(0)[29], 9u);
}

TEST(Topologies, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
  for (std::uint32_t v = 1; v < 6; ++v) EXPECT_EQ(g.bfs_distances(0)[v], 1u);
}

TEST(Topologies, CairoIsFalconHeavyHex) {
  const Graph g = make_cairo();
  EXPECT_EQ(g.num_nodes(), 27u);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_degree(), 3u);  // heavy-hex signature
}

TEST(Topologies, TwentyQubitDevices) {
  for (const Graph& g : {make_almaden(), make_johannesburg()}) {
    EXPECT_EQ(g.num_nodes(), 20u);
    EXPECT_TRUE(g.is_connected());
    EXPECT_LE(g.max_degree(), 4u);
    EXPECT_GE(g.num_edges(), 20u);
  }
}

TEST(Topologies, BrooklynSizeAndShape) {
  const Graph g = make_brooklyn();
  EXPECT_EQ(g.num_nodes(), 65u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_degree(), 3u);  // heavy-hex signature
  // Bridge qubits (numbered after each row, IBM convention) have degree 2.
  for (std::uint32_t v : {10, 11, 12, 24, 25, 26, 38, 39, 40, 52, 53, 54})
    EXPECT_EQ(g.degree(v), 2u) << "bridge " << v;
}

TEST(Topologies, CambridgeSize) {
  const Graph g = make_cambridge();
  EXPECT_EQ(g.num_nodes(), 28u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(g.max_degree(), 3u);
}

TEST(Topologies, ConnectivityOrderingMatchesPaperIntuition) {
  // The paper's Obs. VIII: better-connected architectures route with less
  // overhead.  Average degree should order complete > mesh > heavy-hex >
  // linear.
  const double linear = make_linear(20).average_degree();
  const double hex = make_cairo().average_degree();
  const double mesh = make_mesh(5, 6).average_degree();
  const double complete = make_complete(20).average_degree();
  EXPECT_LT(linear, hex);
  EXPECT_LT(hex, mesh);
  EXPECT_LT(mesh, complete);
}

TEST(Topologies, LookupByName) {
  EXPECT_EQ(make_topology("linear:7").num_nodes(), 7u);
  EXPECT_EQ(make_topology("mesh:5x4").num_nodes(), 20u);
  EXPECT_EQ(make_topology("complete:9").num_nodes(), 9u);
  EXPECT_EQ(make_topology("cairo").num_nodes(), 27u);
  EXPECT_EQ(make_topology("brooklyn").num_nodes(), 65u);
  EXPECT_EQ(make_topology("cambridge").num_nodes(), 28u);
  EXPECT_EQ(make_topology("almaden").num_nodes(), 20u);
  EXPECT_EQ(make_topology("johannesburg").num_nodes(), 20u);
  EXPECT_THROW(make_topology("torus:3"), InvalidArgument);
  EXPECT_THROW(make_topology("mesh:bad"), InvalidArgument);
}

TEST(Topologies, NamedListResolves) {
  for (const auto& name : named_topologies()) {
    const Graph g = make_topology(name);
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_TRUE(g.is_connected()) << name;
  }
}

TEST(Topologies, HeavyHexGenerator) {
  const Graph g = make_heavy_hex({4, 4});
  // 8 row qubits + 1 bridge (offset 0: column 0; 4 would exceed span).
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_heavy_hex({}), InvalidArgument);
}

}  // namespace
}  // namespace radsurf
