// Spec-layer tests: round-trip parse/serialize, strict unknown-field and
// bad-type rejection with actionable (path-qualified) messages, and the
// grid scenario's params validation.
#include "cli/spec.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "cli/registry.hpp"

namespace radsurf {
namespace {

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SpecError";
  return "";
}

TEST(Spec, ParsesFullDocument) {
  const ScenarioSpec spec = ScenarioSpec::from_json(JsonValue::parse(R"({
    "scenario": "fig5",
    "description": "d",
    "shots": 123,
    "seed": 9,
    "smoke": true,
    "output": {"csv": "a.csv", "json": "b.json", "checkpoint": "c.jsonl"},
    "params": {"root": 3}
  })"));
  EXPECT_EQ(spec.scenario, "fig5");
  EXPECT_EQ(spec.description, "d");
  EXPECT_EQ(spec.shots, 123u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_TRUE(spec.smoke);
  EXPECT_EQ(spec.output.csv_path, "a.csv");
  EXPECT_EQ(spec.output.json_path, "b.json");
  EXPECT_EQ(spec.output.checkpoint_path, "c.jsonl");
  EXPECT_DOUBLE_EQ(spec.params.find("root")->as_number(), 3.0);
}

TEST(Spec, DefaultsApply) {
  const ScenarioSpec spec =
      ScenarioSpec::from_json(JsonValue::parse(R"({"scenario": "fig3"})"));
  EXPECT_EQ(spec.shots, 0u);
  EXPECT_EQ(spec.seed, 20240715u);
  EXPECT_FALSE(spec.smoke);
  EXPECT_TRUE(spec.output.csv_path.empty());
}

TEST(Spec, RoundTripsThroughJson) {
  ScenarioSpec spec;
  spec.scenario = "grid";
  spec.description = "round trip";
  spec.shots = 777;
  spec.seed = 424242;
  spec.smoke = true;
  spec.output.csv_path = "out.csv";
  spec.output.checkpoint_path = "out.ckpt.jsonl";
  spec.params = JsonValue::parse(
      R"({"codes": ["repetition:5"], "error_rates": [0.001, 0.01]})");
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  // And the JSON itself is stable under a second round trip.
  EXPECT_EQ(back.to_json(), spec.to_json());
}

TEST(Spec, MissingScenarioIsActionable) {
  const std::string what = error_of(
      [] { ScenarioSpec::from_json(JsonValue::parse("{}")); });
  EXPECT_NE(what.find("$.scenario"), std::string::npos) << what;
  EXPECT_NE(what.find("radsurf list"), std::string::npos) << what;
}

TEST(Spec, UnknownTopLevelFieldRejectedWithFieldList) {
  const std::string what = error_of([] {
    ScenarioSpec::from_json(
        JsonValue::parse(R"({"scenario": "fig3", "shotz": 10})"));
  });
  EXPECT_NE(what.find("unknown field"), std::string::npos) << what;
  EXPECT_NE(what.find("$.shotz"), std::string::npos) << what;
  EXPECT_NE(what.find("shots"), std::string::npos) << what;  // suggestion list
}

TEST(Spec, BadTypeRejectedWithPath) {
  const std::string what = error_of([] {
    ScenarioSpec::from_json(
        JsonValue::parse(R"({"scenario": "fig3", "shots": "many"})"));
  });
  EXPECT_NE(what.find("$.shots"), std::string::npos) << what;
  EXPECT_NE(what.find("expected number"), std::string::npos) << what;
  EXPECT_NE(what.find("\"many\""), std::string::npos) << what;
}

TEST(Spec, FractionalShotsRejected) {
  const std::string what = error_of([] {
    ScenarioSpec::from_json(
        JsonValue::parse(R"({"scenario": "fig3", "shots": 1.5})"));
  });
  EXPECT_NE(what.find("non-negative integer"), std::string::npos) << what;
}

TEST(Spec, UnknownOutputFieldRejected) {
  EXPECT_THROW(ScenarioSpec::from_json(JsonValue::parse(
                   R"({"scenario": "fig3", "output": {"csvv": "x"}})")),
               SpecError);
}

TEST(Spec, JobsParsesRoundTripsAndRejectsZero) {
  const ScenarioSpec spec = ScenarioSpec::from_json(
      JsonValue::parse(R"({"scenario": "grid", "jobs": 4})"));
  EXPECT_EQ(spec.jobs, 4u);
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back, spec);
  // Default is one worker, and to_json omits it for stability.
  const ScenarioSpec plain =
      ScenarioSpec::from_json(JsonValue::parse(R"({"scenario": "grid"})"));
  EXPECT_EQ(plain.jobs, 1u);
  EXPECT_EQ(plain.to_json().find("jobs"), nullptr);
  const std::string what = error_of([] {
    ScenarioSpec::from_json(
        JsonValue::parse(R"({"scenario": "grid", "jobs": 0})"));
  });
  EXPECT_NE(what.find("$.jobs"), std::string::npos) << what;
}

TEST(Spec, FingerprintTracksSamplingFieldsOnly) {
  ScenarioSpec a;
  a.scenario = "grid";
  a.seed = 1;
  ScenarioSpec b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Output paths, description and worker count do not invalidate
  // checkpoints (a campaign checkpointed under --jobs 4 resumes under
  // --jobs 1 and vice versa)...
  b.output.csv_path = "elsewhere.csv";
  b.description = "renamed";
  b.jobs = 8;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // ...but shots, seed, scenario and params do.
  b = a;
  b.shots = 999;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.seed = 2;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.params = JsonValue::parse(R"({"decoders": ["greedy"]})");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- scenario-factory params validation ------------------------------------

ScenarioSpec spec_for(const std::string& scenario,
                      const std::string& params_json) {
  ScenarioSpec spec;
  spec.scenario = scenario;
  spec.params = JsonValue::parse(params_json);
  return spec;
}

TEST(SpecParams, UnknownScenarioListsRegistry) {
  const std::string what = error_of([] {
    ScenarioSpec spec;
    spec.scenario = "fig99";
    make_scenario(spec);
  });
  EXPECT_NE(what.find("unknown scenario \"fig99\""), std::string::npos)
      << what;
  EXPECT_NE(what.find("fig5"), std::string::npos) << what;
  EXPECT_NE(what.find("grid"), std::string::npos) << what;
}

TEST(SpecParams, OptionsOnlyScenariosRejectParams) {
  const std::string what = error_of(
      [] { make_scenario(spec_for("fig6", R"({"extent": 3})")); });
  EXPECT_NE(what.find("unknown field $.params.extent"), std::string::npos)
      << what;
}

TEST(SpecParams, Fig5ValidatesErrorRates) {
  EXPECT_NO_THROW(
      make_scenario(spec_for("fig5", R"({"error_rates": [0.01]})")));
  const std::string what = error_of([] {
    make_scenario(spec_for("fig5", R"({"error_rates": []})"));
  });
  EXPECT_NE(what.find("$.params.error_rates"), std::string::npos) << what;
}

TEST(SpecParams, GridRejectsUnknownDecoder) {
  const std::string what = error_of([] {
    make_scenario(spec_for("grid", R"({"decoders": ["uf"]})"));
  });
  EXPECT_NE(what.find("unknown decoder \"uf\""), std::string::npos) << what;
  EXPECT_NE(what.find("union-find"), std::string::npos) << what;
}

TEST(SpecParams, GridAcceptsDenseMatcherBackend) {
  EXPECT_NO_THROW(make_scenario(
      spec_for("grid", R"({"decoders": ["mwpm", "mwpm:dense"]})")));
}

TEST(SpecParams, GridValidatesDpMaxCluster) {
  EXPECT_NO_THROW(
      make_scenario(spec_for("grid", R"({"dp_max_cluster": 16})")));
  EXPECT_NO_THROW(
      make_scenario(spec_for("grid", R"({"dp_max_cluster": 0})")));
  const std::string what = error_of([] {
    make_scenario(spec_for("grid", R"({"dp_max_cluster": 17})"));
  });
  EXPECT_NE(what.find("$.params.dp_max_cluster"), std::string::npos) << what;
  EXPECT_NE(what.find("16"), std::string::npos) << what;
  // Strict schema: a misspelling is an unknown field, not a silent no-op.
  const std::string typo = error_of([] {
    make_scenario(spec_for("grid", R"({"dp_max_clusters": 8})"));
  });
  EXPECT_NE(typo.find("unknown field"), std::string::npos) << typo;
}

TEST(SpecParams, GridRejectsUnknownCodeAndArch) {
  EXPECT_THROW(make_scenario(spec_for("grid", R"({"codes": ["steane:7"]})")),
               SpecError);
  EXPECT_THROW(
      make_scenario(spec_for("grid", R"({"codes": ["repetition"]})")),
      SpecError);
  EXPECT_THROW(
      make_scenario(spec_for("grid", R"({"archs": ["dodecahedron"]})")),
      SpecError);
}

TEST(SpecParams, GridRejectsConfigsPlusCodes) {
  const std::string what = error_of([] {
    make_scenario(spec_for(
        "grid",
        R"({"configs": [{"code": "repetition:5", "arch": "mesh:5x2"}],
            "codes": ["repetition:5"]})"));
  });
  EXPECT_NE(what.find("not both"), std::string::npos) << what;
}

TEST(SpecParams, GridRejectsUnknownInjectionKind) {
  const std::string what = error_of([] {
    make_scenario(
        spec_for("grid", R"({"injections": [{"kind": "meteor"}]})"));
  });
  EXPECT_NE(what.find("$.params.injections[0]"), std::string::npos) << what;
  EXPECT_NE(what.find("meteor"), std::string::npos) << what;
}

TEST(SpecParams, GridRequiresErasureQubits) {
  EXPECT_THROW(make_scenario(spec_for(
                   "grid", R"({"injections": [{"kind": "erasure"}]})")),
               SpecError);
}

TEST(SpecParams, GridRejectsUnknownInjectionField) {
  const std::string what = error_of([] {
    make_scenario(spec_for(
        "grid",
        R"({"injections": [{"kind": "radiation", "rot": 2}]})"));
  });
  EXPECT_NE(what.find("unknown field $.params.injections[0].rot"),
            std::string::npos)
      << what;
}

}  // namespace
}  // namespace radsurf
