#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(Gate, MetadataConsistency) {
  EXPECT_TRUE(gate_info(Gate::H).is_unitary);
  EXPECT_FALSE(gate_info(Gate::H).is_two_qubit);
  EXPECT_TRUE(gate_info(Gate::CX).is_two_qubit);
  EXPECT_TRUE(gate_info(Gate::M).is_measurement);
  EXPECT_FALSE(gate_info(Gate::M).is_unitary);
  EXPECT_TRUE(gate_info(Gate::R).is_reset);
  EXPECT_TRUE(gate_info(Gate::MR).is_measurement);
  EXPECT_TRUE(gate_info(Gate::MR).is_reset);
  EXPECT_TRUE(gate_info(Gate::DEPOLARIZE1).is_noise);
  EXPECT_TRUE(gate_info(Gate::DETECTOR).is_annotation);
  EXPECT_EQ(gate_info(Gate::DEPOLARIZE2).targets_per_op, 2);
}

TEST(Gate, NameRoundTrip) {
  for (int i = 0; i < kNumGates; ++i) {
    const auto g = static_cast<Gate>(i);
    EXPECT_EQ(gate_from_name(std::string(gate_info(g).name)), g);
  }
  EXPECT_THROW(gate_from_name("NOPE"), InvalidArgument);
}

TEST(Circuit, AppendTracksQubitsAndRecords) {
  Circuit c;
  c.h(0);
  c.cx(0, 5);
  c.m(5);
  c.m(0);
  EXPECT_EQ(c.num_qubits(), 6u);
  EXPECT_EQ(c.num_measurements(), 2u);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.num_operations(), 4u);
}

TEST(Circuit, MultiTargetInstructionCountsOps) {
  Circuit c;
  c.append(Gate::CX, {0, 1, 2, 3});
  EXPECT_EQ(c.instructions()[0].num_ops(), 2u);
  EXPECT_EQ(c.num_operations(), 2u);
  c.append(Gate::M, {0, 1, 2});
  EXPECT_EQ(c.num_measurements(), 3u);
}

TEST(Circuit, ValidationErrors) {
  Circuit c;
  EXPECT_THROW(c.append(Gate::CX, {0}), InvalidArgument);       // odd targets
  EXPECT_THROW(c.append(Gate::CX, {1, 1}), InvalidArgument);    // same qubit
  EXPECT_THROW(c.append(Gate::H, {}), InvalidArgument);         // no targets
  EXPECT_THROW(c.append(Gate::X_ERROR, {0}), InvalidArgument);  // missing arg
  EXPECT_THROW(c.append(Gate::X_ERROR, {0}, {1.5}), InvalidArgument);
  EXPECT_THROW(c.append(Gate::DETECTOR, {}), InvalidArgument);
}

TEST(Circuit, LookbackValidation) {
  Circuit c;
  c.m(0);
  EXPECT_THROW(c.detector({2}), InvalidArgument);  // only 1 record so far
  c.detector({1});
  EXPECT_EQ(c.num_detectors(), 1u);
  EXPECT_THROW(c.detector({0}), InvalidArgument);  // lookback >= 1
}

TEST(Circuit, AnnotationRecordsResolveAbsoluteIndices) {
  Circuit c;
  c.m(0);        // record 0
  c.m(1);        // record 1
  c.detector({1});          // -> record 1
  c.m(2);        // record 2
  c.detector({1, 3});       // -> records 2 and 0
  c.observable_include(0, {2});  // -> record 1

  const auto& instrs = c.instructions();
  ASSERT_EQ(instrs.size(), 6u);
  EXPECT_EQ(c.annotation_records(2), (std::vector<std::size_t>{1}));
  EXPECT_EQ(c.annotation_records(4), (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(c.annotation_records(5), (std::vector<std::size_t>{1}));
  EXPECT_EQ(c.num_observables(), 1u);
}

TEST(Circuit, TextRoundTrip) {
  Circuit c;
  c.r(0);
  c.r(1);
  c.h(0);
  c.cx(0, 1);
  c.append(Gate::DEPOLARIZE1, {0, 1}, {0.01});
  c.m(0);
  c.m(1);
  c.detector({1, 2});
  c.observable_include(0, {1});

  const std::string text = c.str();
  const Circuit parsed = Circuit::parse(text);
  EXPECT_EQ(parsed, c);
  EXPECT_EQ(parsed.str(), text);
}

TEST(Circuit, ParseHandlesCommentsAndBlanks) {
  const Circuit c = Circuit::parse(R"(
# a comment
H 0

CX 0 1   # trailing comment
DEPOLARIZE2(0.25) 0 1
M 1
DETECTOR rec[-1]
)");
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.instructions()[2].args[0], 0.25);
  EXPECT_EQ(c.num_detectors(), 1u);
}

TEST(Circuit, ParseRejectsGarbage) {
  EXPECT_THROW(Circuit::parse("FLY 0"), InvalidArgument);
  EXPECT_THROW(Circuit::parse("X_ERROR(0.1 0"), InvalidArgument);
}

TEST(Circuit, ConcatenationPreservesRecords) {
  Circuit a;
  a.m(0);
  Circuit b;
  b.m(1);
  b.detector({1});
  a += b;
  EXPECT_EQ(a.num_measurements(), 2u);
  EXPECT_EQ(a.num_detectors(), 1u);
  // b's detector must refer to b's measurement (record 1 in a).
  EXPECT_EQ(a.annotation_records(2), (std::vector<std::size_t>{1}));
}

TEST(Circuit, RecordOffsetPerInstruction) {
  Circuit c;
  c.m(0);
  c.h(1);
  c.append(Gate::M, {1, 2});
  EXPECT_EQ(c.record_offset(0), 0u);
  EXPECT_EQ(c.record_offset(2), 1u);
}

}  // namespace
}  // namespace radsurf
