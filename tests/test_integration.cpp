// Cross-module integration tests: the paper's qualitative observations as
// executable invariants, plus simulator cross-validation on real code
// circuits.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "detector/detectors.hpp"
#include "detector/error_model.hpp"
#include "inject/campaign.hpp"
#include "inject/results.hpp"
#include "noise/depolarizing.hpp"
#include "stab/reference.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

// --- simulator cross-validation on a real code ----------------------------

TEST(CrossValidation, DetectorRatesAgreeOnXxzzCircuit) {
  // Tableau (exact) vs frame (bit-parallel) sampling of the same noisy
  // XXZZ-(3,3) circuit must produce the same per-detector flip rates.
  const XXZZCode code(3, 3);
  const Circuit noisy = DepolarizingModel{0.02}.apply(code.build());
  const DetectorSet ds = DetectorSet::compile(noisy);
  TableauSimulator tsim(noisy);
  const BitVec ref = tsim.reference_sample();

  const std::size_t shots = 4000;
  std::vector<double> t_rate(ds.num_detectors(), 0);
  Rng trng(21);
  for (std::size_t s = 0; s < shots; ++s) {
    const BitVec rec = tsim.sample(trng);
    const BitVec dets = ds.detector_values(rec, ref);
    for (std::size_t d = 0; d < t_rate.size(); ++d) t_rate[d] += dets.get(d);
  }

  Rng frng(22);
  FrameSimulator fsim(noisy, shots);
  const auto flips = fsim.run(frng);
  const auto det_rows = ds.detector_flips(flips);
  for (std::size_t d = 0; d < ds.num_detectors(); ++d) {
    const double tr = t_rate[d] / static_cast<double>(shots);
    const double fr = static_cast<double>(det_rows[d].popcount()) /
                      static_cast<double>(shots);
    EXPECT_NEAR(tr, fr, 0.025) << "detector " << d;
  }
}

TEST(CrossValidation, ObservableFlipRatesAgreeOnRepetition) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Circuit noisy = DepolarizingModel{0.03}.apply(code.build());
  const DetectorSet ds = DetectorSet::compile(noisy);
  TableauSimulator tsim(noisy);
  const BitVec ref = tsim.reference_sample();

  const std::size_t shots = 6000;
  double t_obs = 0;
  Rng trng(31);
  for (std::size_t s = 0; s < shots; ++s)
    t_obs += ds.observable_values(tsim.sample(trng), ref) & 1;

  Rng frng(32);
  FrameSimulator fsim(noisy, shots);
  const auto obs_rows = ds.observable_flips(fsim.run(frng));
  const double f_obs = static_cast<double>(obs_rows[0].popcount());
  EXPECT_NEAR(t_obs / shots, f_obs / shots, 0.02);
}

// --- paper observations as invariants --------------------------------------

TEST(PaperInvariants, ObsI_RadiationDominatesAtAnyPhysicalErrorRate) {
  // Even at p = 1e-8 the strike-time LER stays catastrophic.
  const XXZZCode code(3, 3);
  EngineOptions opts;
  opts.physical_error_rate = 1e-8;
  InjectionEngine engine(code, make_mesh(5, 4), opts);
  const auto strike = engine.run_radiation_at(2, 1.0, true, 1200, 41);
  EXPECT_GT(strike.rate(), 0.2);
  // And the intrinsic-only baseline at that p is essentially zero.
  const auto base = engine.run_intrinsic(1200, 42);
  EXPECT_LT(base.rate(), 0.01);
}

TEST(PaperInvariants, ObsII_NoDestructiveInterference) {
  // Radiation on top of intrinsic noise never *reduces* the LER: compare
  // strike LER across intrinsic noise levels.
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  double last = 0.0;
  for (double p : {1e-6, 1e-3, 1e-2}) {
    EngineOptions opts;
    opts.physical_error_rate = p;
    InjectionEngine engine(code, make_mesh(5, 2), opts);
    const auto strike = engine.run_radiation_at(2, 1.0, true, 1500, 43);
    EXPECT_GE(strike.rate(), last - 0.05) << "p=" << p;
    last = strike.rate();
  }
}

TEST(PaperInvariants, ObsIV_BitFlipProtectionBeatsPhaseFlip) {
  // Equal qubit budget, single-erasure medians (Fig 6's comparison).
  const XXZZCode bitflip(3, 1);
  const XXZZCode phaseflip(1, 3);
  InjectionEngine eb(bitflip, make_mesh(5, 2), EngineOptions{});
  InjectionEngine ep(phaseflip, make_mesh(5, 2), EngineOptions{});
  auto median_ler = [](InjectionEngine& e) {
    std::vector<Proportion> per_root;
    std::uint64_t salt = 0;
    for (std::uint32_t root : e.active_qubits())
      per_root.push_back(e.run_erasure({root}, 800, 4000 + 31 * ++salt));
    return median_rate(per_root);
  };
  EXPECT_LT(median_ler(eb), median_ler(ep));
}

TEST(PaperInvariants, ObsV_SpreadingFaultBeatsSingleErasure) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  std::vector<Proportion> spread, single;
  std::uint64_t salt = 0;
  for (std::uint32_t root : engine.active_qubits()) {
    spread.push_back(
        engine.run_radiation_at(root, 1.0, true, 500, 5000 + 7 * ++salt));
    single.push_back(engine.run_erasure({root}, 500, 6000 + 7 * salt));
  }
  EXPECT_GT(median_rate(spread), median_rate(single));
}

TEST(PaperInvariants, ObsVIII_SwapOverheadTracksConnectivity) {
  // avg degree up => swaps down, for the XXZZ code.
  const XXZZCode code(3, 3);
  const Circuit logical = code.build();
  std::vector<std::pair<double, std::size_t>> rows;
  for (const char* arch : {"linear:18", "mesh:5x4", "complete:18"}) {
    const Graph g = make_topology(arch);
    rows.emplace_back(g.average_degree(),
                      transpile(logical, g, {}).swap_count);
  }
  EXPECT_GT(rows[0].second, rows[1].second);  // linear > mesh
  EXPECT_GT(rows[1].second, rows[2].second);  // mesh > complete
  EXPECT_EQ(rows[2].second, 0u);              // complete: no swaps
}

TEST(PaperInvariants, TemporalDecayReducesDamageMonotonically) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const auto series = engine.run_radiation_event(2, 1200, 47);
  // Pool the first three and last three samples.
  Proportion early, late;
  for (int i = 0; i < 3; ++i) early += series[static_cast<std::size_t>(i)];
  for (std::size_t i = series.size() - 3; i < series.size(); ++i)
    late += series[i];
  EXPECT_GT(early.rate(), late.rate() + 0.05);
}

// --- engine plumbing across architectures ----------------------------------

class EngineOnArch : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineOnArch, FullPipelineRunsAndDecodes) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_topology(GetParam()), EngineOptions{});
  EXPECT_GE(engine.active_qubits().size(), code.num_qubits());
  EXPECT_GT(engine.matching_graph().edges().size(), 10u);
  const auto res = engine.run_radiation_at(
      engine.active_qubits()[0], 0.8, true, 200, 51);
  EXPECT_EQ(res.trials, 200u);
  EXPECT_GE(res.rate(), 0.0);
  EXPECT_LE(res.rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Architectures, EngineOnArch,
                         ::testing::Values("mesh:5x4", "linear:18",
                                           "complete:18", "almaden",
                                           "johannesburg", "cambridge",
                                           "cairo", "brooklyn"));

class RepEngineOnArch : public ::testing::TestWithParam<std::string> {};

TEST_P(RepEngineOnArch, FullPipelineRunsAndDecodes) {
  const RepetitionCode code(11, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_topology(GetParam()), EngineOptions{});
  const auto res = engine.run_erasure({engine.active_qubits()[2]}, 200, 53);
  EXPECT_EQ(res.trials, 200u);
}

INSTANTIATE_TEST_SUITE_P(Architectures, RepEngineOnArch,
                         ::testing::Values("linear:22", "mesh:5x6", "cairo",
                                           "cambridge", "brooklyn"));

// --- determinism of the full stack -----------------------------------------

TEST(Determinism, ErasureCampaignReproducible) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto& active = engine.active_qubits();
  const std::vector<std::uint32_t> set(active.begin(), active.begin() + 4);
  const auto a = engine.run_erasure(set, 500, 61);
  const auto b = engine.run_erasure(set, 500, 61);
  EXPECT_EQ(a.successes, b.successes);
}

TEST(Determinism, EngineConstructionIsDeterministic) {
  const XXZZCode code(3, 3);
  InjectionEngine e1(code, make_mesh(5, 4), EngineOptions{});
  InjectionEngine e2(code, make_mesh(5, 4), EngineOptions{});
  EXPECT_EQ(e1.transpiled().circuit, e2.transpiled().circuit);
  EXPECT_EQ(e1.matching_graph().edges().size(),
            e2.matching_graph().edges().size());
}

}  // namespace
}  // namespace radsurf
