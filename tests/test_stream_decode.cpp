// Stream-vs-batch decode parity (decoder/sliding_window.hpp ingest/finish
// and inject/campaign.hpp record_timeline_shots / make_stream_decoder).
//
// The serve subsystem's correctness rests on one contract: feeding a
// shot's defects incrementally — any round granularity, any interleaving
// of ingest calls — commits exactly the windows whose rounds are complete
// and finishes bit-for-bit equal to decode() of the full defect set.  The
// offline side of the pin (record_timeline_shots) must itself reproduce
// run_timeline's EXACT sampling, including the herald-aware decoder path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "decoder/sliding_window.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

constexpr std::size_t kRounds = 40;

EngineOptions timeline_options() {
  EngineOptions opts;
  opts.rounds = kRounds;
  opts.whole_history_decoder = false;
  return opts;
}

std::unique_ptr<InjectionEngine> make_engine() {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  return std::make_unique<InjectionEngine>(code, make_mesh(5, 2),
                                           timeline_options());
}

RadiationTimeline make_timeline(const InjectionEngine& engine) {
  TimelineOptions topts;
  topts.events_per_round = 0.05;
  topts.duration_rounds = 8;
  return RadiationTimeline(engine.radiation(), topts);
}

/// Group a shot's defects by stabilisation round.
std::map<std::size_t, std::vector<std::uint32_t>> defects_by_round(
    const InjectionEngine& engine, const std::vector<std::uint32_t>& defects) {
  std::map<std::size_t, std::vector<std::uint32_t>> by_round;
  for (const std::uint32_t d : defects)
    by_round[engine.detector_rounds()[d]].push_back(d);
  return by_round;
}

/// Stream `shot` into `dec` delivering `granularity` rounds per ingest and
/// require bit-for-bit agreement with the batch decode.
void expect_stream_parity(const InjectionEngine& engine,
                          const SlidingWindowDecoder& dec,
                          const std::vector<std::uint32_t>& defects,
                          std::uint64_t expected,
                          std::size_t granularity) {
  const auto by_round = defects_by_round(engine, defects);
  SlidingWindowDecoder::StreamCursor cursor;
  std::size_t committed = 0;
  for (std::size_t r = 0; r < dec.num_rounds(); r += granularity) {
    const std::size_t complete = std::min(r + granularity, dec.num_rounds());
    std::vector<std::uint32_t> chunk;
    for (std::size_t q = r; q < complete; ++q) {
      const auto it = by_round.find(q);
      if (it != by_round.end())
        chunk.insert(chunk.end(), it->second.begin(), it->second.end());
    }
    committed += dec.ingest(cursor, chunk.data(), chunk.size(), complete);
  }
  EXPECT_EQ(committed, dec.num_windows());
  EXPECT_EQ(dec.finish(cursor), expected)
      << "granularity " << granularity << " diverges from batch decode";
  EXPECT_TRUE(cursor.finished);
}

TEST(StreamDecode, IngestMatchesBatchDecodeAtEveryGranularity) {
  const auto engine = make_engine();
  const RadiationTimeline timeline = make_timeline(*engine);
  const auto dec = engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      engine->record_timeline_shots(timeline, {}, 24, 20260801);
  ASSERT_EQ(shots.size(), 24u);

  bool saw_defects = false;
  for (const RecordedShot& shot : shots) {
    saw_defects = saw_defects || !shot.defects.empty();
    const std::uint64_t batch = dec->decode(shot.defects);
    for (const std::size_t granularity : {std::size_t{1}, std::size_t{3},
                                          std::size_t{10}, kRounds})
      expect_stream_parity(*engine, *dec, shot.defects, batch, granularity);
  }
  EXPECT_TRUE(saw_defects) << "workload degenerate: every shot was quiet";
}

TEST(StreamDecode, CommitScheduleFollowsWindowEndRounds) {
  const auto engine = make_engine();
  const auto dec = engine->make_stream_decoder(nullptr, {}, {10, 5});
  // Quiet shot, one round per ingest: windows commit exactly when their
  // end round completes — the bounded-latency schedule serve promises.
  SlidingWindowDecoder::StreamCursor cursor;
  std::size_t next = 0;
  for (std::size_t r = 1; r <= dec->num_rounds(); ++r) {
    const std::size_t n = dec->ingest(cursor, nullptr, 0, r);
    for (std::size_t w = next; w < next + n; ++w)
      EXPECT_EQ(dec->window_end_round(w), r);
    next += n;
  }
  EXPECT_EQ(next, dec->num_windows());
  EXPECT_EQ(dec->finish(cursor), 0u);
}

TEST(StreamDecode, RecordedShotsPinRunTimelineExact) {
  // record_timeline_shots mirrors the EXACT sampling path's RNG streams,
  // so the campaign must run EXACT too for a per-shot pin.
  EngineOptions opts = timeline_options();
  opts.sampling_path = SamplingPath::EXACT;
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const auto engine =
      std::make_unique<InjectionEngine>(code, make_mesh(5, 2), opts);
  const RadiationTimeline timeline = make_timeline(*engine);
  Rng rng(20260802);
  const std::vector<RadiationEvent> events =
      timeline.sample(kRounds, engine->active_qubits(), rng);

  // The recorded shots decoded offline must reproduce run_timeline's
  // logical-error proportion on the same seed: same RNG streams, same
  // decoder, same window layout.
  const SlidingWindowOptions window{10, 5};
  const std::size_t shots = 48;
  const Proportion campaign =
      engine->run_timeline(timeline, events, shots, 777, window);
  const auto records =
      engine->record_timeline_shots(timeline, events, shots, 777);
  // The engine was built with the default (unaware) decoder options, so
  // run_timeline decoded on the shared intrinsic-weighted windows — the
  // nullptr/no-events stream decoder (the aware pin lives in the next
  // test).
  const auto dec = engine->make_stream_decoder(nullptr, {}, window);
  std::size_t errors = 0;
  for (const RecordedShot& shot : records)
    if (dec->decode(shot.defects) != shot.observables) ++errors;
  EXPECT_EQ(errors, campaign.successes);
  EXPECT_EQ(records.size(), campaign.trials);
}

TEST(StreamDecode, HeraldAwareStreamMatchesOfflineAwareDecode) {
  const auto engine = make_engine();
  const RadiationTimeline timeline = make_timeline(*engine);
  Rng rng(20260803);
  std::vector<RadiationEvent> events;
  for (int attempt = 0; attempt < 1000 && events.empty(); ++attempt)
    events = timeline.sample(kRounds, engine->active_qubits(), rng);
  ASSERT_FALSE(events.empty());

  const auto aware = engine->make_stream_decoder(&timeline, events, {10, 5});
  const auto unaware = engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      engine->record_timeline_shots(timeline, events, 24, 20260804);

  bool diverged = false;
  for (const RecordedShot& shot : shots) {
    const std::uint64_t offline = aware->decode(shot.defects);
    diverged = diverged || offline != unaware->decode(shot.defects);
    // Mid-stream granularity switch: deliver 3 rounds, then 7, then the
    // rest in one call — the aware decoder streams like any other.
    SlidingWindowDecoder::StreamCursor cursor;
    const auto by_round = defects_by_round(*engine, shot.defects);
    std::vector<std::uint32_t> chunk;
    auto feed = [&](std::size_t from, std::size_t to) {
      chunk.clear();
      for (std::size_t q = from; q < to; ++q) {
        const auto it = by_round.find(q);
        if (it != by_round.end())
          chunk.insert(chunk.end(), it->second.begin(), it->second.end());
      }
      aware->ingest(cursor, chunk.data(), chunk.size(), to);
    };
    feed(0, 3);
    feed(3, 10);
    feed(10, kRounds);
    EXPECT_EQ(aware->finish(cursor), offline);
  }
  // The realization must actually exercise the aware path somewhere,
  // otherwise this test pins nothing.
  EXPECT_TRUE(diverged || events.empty());
}

TEST(StreamDecode, IngestRejectsProtocolViolations) {
  const auto engine = make_engine();
  const auto dec = engine->make_stream_decoder(nullptr, {}, {10, 5});

  // Non-monotone rounds_complete.
  {
    SlidingWindowDecoder::StreamCursor cursor;
    dec->ingest(cursor, nullptr, 0, 12);
    EXPECT_THROW(dec->ingest(cursor, nullptr, 0, 5), InvalidArgument);
  }
  // rounds_complete past the experiment.
  {
    SlidingWindowDecoder::StreamCursor cursor;
    EXPECT_THROW(dec->ingest(cursor, nullptr, 0, dec->num_rounds() + 1),
                 InvalidArgument);
  }
  // A defect of a round not yet delivered.
  {
    SlidingWindowDecoder::StreamCursor cursor;
    std::uint32_t late = 0;
    for (std::uint32_t d = 0;
         d < static_cast<std::uint32_t>(engine->detector_rounds().size());
         ++d)
      if (engine->detector_rounds()[d] >= 20) late = d;
    EXPECT_THROW(dec->ingest(cursor, &late, 1, 2), InvalidArgument);
  }
  // A defect of already-committed history.
  {
    SlidingWindowDecoder::StreamCursor cursor;
    dec->ingest(cursor, nullptr, 0, dec->num_rounds());
    std::uint32_t early = 0;  // detector of round 0
    for (std::uint32_t d = 0;
         d < static_cast<std::uint32_t>(engine->detector_rounds().size());
         ++d)
      if (engine->detector_rounds()[d] == 0) early = d;
    EXPECT_THROW(
        dec->ingest(cursor, &early, 1, dec->num_rounds()), InvalidArgument);
  }
}

TEST(StreamDecode, SharedMemoAcceleratesConcurrentCursors) {
  const auto engine = make_engine();
  const auto dec = engine->make_stream_decoder(nullptr, {}, {10, 5});
  const RadiationTimeline timeline = make_timeline(*engine);
  const auto shots =
      engine->record_timeline_shots(timeline, {}, 8, 20260805);

  // Stream the same workload twice, interleaved across two cursor "lanes":
  // the second pass replays window-local defect sets the first pass
  // memoised, so hits must strictly increase faster than lookups alone
  // would suggest.
  const std::uint64_t lookups_before = dec->memo_lookups();
  for (int pass = 0; pass < 2; ++pass)
    for (const RecordedShot& shot : shots)
      expect_stream_parity(*engine, *dec, shot.defects,
                           dec->decode(shot.defects), 10);
  EXPECT_GT(dec->memo_lookups(), lookups_before);
  EXPECT_GT(dec->memo_hits(), 0u);
}

}  // namespace
}  // namespace radsurf
