#include "arch/graph.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace radsurf {
namespace {

Graph path4() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, EdgesAndDegrees) {
  Graph g = path4();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(Graph, DuplicateEdgeIgnoredSelfLoopRejected) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(g.add_edge(1, 1), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 3), InvalidArgument);
}

TEST(Graph, BfsDistances) {
  Graph g = path4();
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3}));
  const auto d2 = g.bfs_distances(2);
  EXPECT_EQ(d2, (std::vector<std::size_t>{2, 1, 0, 1}));
}

TEST(Graph, DisconnectedDistanceIsMax) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[2], std::numeric_limits<std::size_t>::max());
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, ConnectedCheck) {
  EXPECT_TRUE(path4().is_connected());
  Graph empty;
  EXPECT_TRUE(empty.is_connected());
}

TEST(Graph, ShortestPathEndpointsInclusive) {
  Graph g = path4();
  const auto p = g.shortest_path(0, 3);
  EXPECT_EQ(p, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(g.shortest_path(2, 2), (std::vector<std::uint32_t>{2}));
}

TEST(Graph, ShortestPathUnreachableEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
}

TEST(Graph, AllPairsMatchesSingleSource) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(0, 4);  // cycle
  const auto ap = g.all_pairs_distances();
  for (std::uint32_t v = 0; v < 5; ++v)
    EXPECT_EQ(ap[v], g.bfs_distances(v));
  EXPECT_EQ(ap[0][2], 2u);  // via either side of the cycle
  EXPECT_EQ(ap[0][3], 2u);  // via 4
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Graph sub = g.induced({1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only 1-2 survives
  EXPECT_TRUE(sub.has_edge(0, 1));
}

}  // namespace
}  // namespace radsurf
