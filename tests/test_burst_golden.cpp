// Golden fixtures for the shipped chip-burst ablation spec
// (specs/abl_burst_aware.json).
//
// The spec's full-budget run (400 shots x 8 timelines = 3200/arm, seed
// 20260808) is the PR's headline artifact.  Its twelve rows, recorded
// 2026-08-08:
//
//   code                 decoder     injection  errors/3200   LER
//   rotated_memory_z:5   mwpm        quiet            1       0.0%
//   rotated_memory_z:5   mwpm        blob           285       8.9%
//   rotated_memory_z:5   mwpm        wide          1152      36.0%
//   rotated_memory_z:5   mwpm:aware  quiet            1       0.0%
//   rotated_memory_z:5   mwpm:aware  blob           194       6.1%   z=-4.3
//   rotated_memory_z:5   mwpm:aware  wide          1127      35.2%
//   rotated_memory_z:11  mwpm        quiet           11       0.3%
//   rotated_memory_z:11  mwpm        blob            60       1.9%
//   rotated_memory_z:11  mwpm        wide           122       3.8%
//   rotated_memory_z:11  mwpm:aware  quiet           11       0.3%
//   rotated_memory_z:11  mwpm:aware  blob            57       1.8%
//   rotated_memory_z:11  mwpm:aware  wide            74       2.3%   z=-3.5
//
// Grid cell RNG streams are per-cell (decoder-stripped cell key), so
// restricting the distances axis to [5] reproduces the d = 5 rows of the
// shipped table bit for bit while skipping the d = 11 half, whose
// per-realization decoder rebuilds dominate the full run's ~2 minute
// wall clock.  (The d = 11 statistical contract is covered separately by
// AwareDecoding.AwareBeatsUnawareUnderBurstsD11.)  The replayed rows are
// pinned exactly — cell seeds are deterministic — and the LER column is
// additionally banded against the golden rates so a drift in one layer
// (formatting vs sampled physics) is reported as two distinct failures.
//
// If a change to the spec or the sampling streams is *intentional*,
// regenerate: `./radsurf run specs/abl_burst_aware.json`, update the
// golden rows here AND in the table above, and say so in the commit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "cli/registry.hpp"
#include "cli/spec.hpp"
#include "util/json.hpp"

namespace radsurf {
namespace {

constexpr std::size_t kShotsPerCell = 3200;  // 400 shots x 8 timelines

constexpr const char* kQuiet =
    "timeline(rate=0,duration=6,burst=1,intensity=0.5,"
    "chip_burst=lambda1.5,timelines=8,window=4/2)";
constexpr const char* kBlob =
    "timeline(rate=0.15,duration=6,burst=1,intensity=0.5,"
    "chip_burst=lambda1.5,timelines=8,window=4/2)";
constexpr const char* kWide =
    "timeline(rate=0.15,duration=6,burst=1,intensity=0.6,"
    "chip_burst=lambda3,timelines=8,window=4/2)";

struct GoldenRow {
  const char* decoder;
  const char* injection;
  std::size_t errors;  // of kShotsPerCell
};

// The d = 5 half, in the grid's deterministic axis order: decoder (mwpm,
// mwpm:aware) x injection (quiet, blob, wide).  The blob pair is the
// headline (aware 194 vs unaware 285, paired arms, z ~ -4.3); the wide
// pair documents the flooded-chip regime where the lambda = 3 blob covers
// the whole 49-qubit device and reweighting cannot help.
constexpr GoldenRow kGoldenD5[] = {
    {"mwpm", kQuiet, 1},        {"mwpm", kBlob, 285},
    {"mwpm", kWide, 1152},      {"mwpm:aware", kQuiet, 1},
    {"mwpm:aware", kBlob, 194}, {"mwpm:aware", kWide, 1127},
};
constexpr std::size_t kNumRows = sizeof(kGoldenD5) / sizeof(kGoldenD5[0]);

// Column indices of the grid table.
constexpr std::size_t kColCode = 0, kColDecoder = 2, kColP = 3, kColRounds = 5,
                      kColInjection = 7, kColShots = 8, kColErrors = 9,
                      kColLer = 10, kColDetail = 13;

TEST(BurstAblationGolden, ShippedSpecD5RowsReplayExactly) {
  ScenarioSpec spec = ScenarioSpec::from_file(
      std::string(RADSURF_SOURCE_DIR) + "/specs/abl_burst_aware.json");
  EXPECT_EQ(spec.scenario, "grid");
  EXPECT_EQ(spec.shots, 400u);
  EXPECT_EQ(spec.seed, 20260808u);
  ASSERT_NE(spec.params.find("distances"), nullptr);
  EXPECT_EQ(spec.params.find("distances")->size(), 2u);  // ships d = 5, 11

  // Replay only the d = 5 half at the full shipped budget: cell RNG
  // streams do not depend on the distances axis, so these rows must be
  // bit-identical to the shipped table.
  JsonValue d5 = JsonValue::array();
  d5.push_back(JsonValue(5));
  spec.params.set("distances", std::move(d5));

  const ExperimentReport rep = make_scenario(spec)->run(nullptr);
  const auto& rows = rep.table.rows();
  ASSERT_EQ(rows.size(), kNumRows);

  for (std::size_t i = 0; i < kNumRows; ++i) {
    SCOPED_TRACE("row " + std::to_string(i) + " (" + kGoldenD5[i].decoder +
                 " " + kGoldenD5[i].injection + ")");
    const auto& row = rows[i];
    EXPECT_EQ(row[kColCode], "rotated_memory_z:5");
    EXPECT_EQ(row[kColDecoder], kGoldenD5[i].decoder);
    EXPECT_EQ(row[kColInjection], kGoldenD5[i].injection);
    EXPECT_EQ(row[kColP], "0.001");
    EXPECT_EQ(row[kColRounds], "8");
    EXPECT_EQ(row[kColShots], std::to_string(kShotsPerCell));
    EXPECT_NE(row[kColDetail].find("engine=compact:w2"), std::string::npos);
    // Exact golden pin: the per-cell seed is deterministic.
    EXPECT_EQ(row[kColErrors], std::to_string(kGoldenD5[i].errors));
    // Banded LER: a formatting refactor that breaks the LER column without
    // touching the error counts fails here, not above.
    const double golden =
        static_cast<double>(kGoldenD5[i].errors) / kShotsPerCell;
    const double sigma = std::sqrt(
        std::max(golden * (1.0 - golden), 1.0 / kShotsPerCell) /
        static_cast<double>(kShotsPerCell));
    ASSERT_FALSE(row[kColLer].empty());
    const double rate = std::stod(row[kColLer]) / 100.0;  // "8.9%"
    EXPECT_NEAR(rate, golden, std::max(4.0 * sigma, 5e-4));
  }

  // The contracts, visible in the shipped artifact:
  //  * quiet aware row bit-identical to its unaware partner, zero rebuilds
  //    (herald-aware is a strict no-op without a herald);
  EXPECT_EQ(rows[3][kColErrors], rows[0][kColErrors]);
  EXPECT_NE(rows[3][kColDetail].find("aware_rebuilds=0"), std::string::npos);
  //  * burst aware rows decode the same paired shots and lose fewer of
  //    them — the blob pair z-significantly (z ~ -4.3 at these counts).
  EXPECT_LT(kGoldenD5[4].errors, kGoldenD5[1].errors);
  EXPECT_LT(kGoldenD5[5].errors, kGoldenD5[2].errors);
  EXPECT_NE(rows[4][kColDetail].find("aware_rebuilds="), std::string::npos);
}

}  // namespace
}  // namespace radsurf
