#include "circuit/dag.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(Dag, LinearChainDepth) {
  Circuit c;
  c.h(0);
  c.h(0);
  c.h(0);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.num_nodes(), 3u);
  EXPECT_EQ(dag.depth(), 3u);
  EXPECT_EQ(dag.layers(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Dag, ParallelGatesShareLayer) {
  Circuit c;
  c.h(0);
  c.h(1);
  c.cx(0, 1);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.depth(), 2u);
  EXPECT_EQ(dag.layers()[0], 0u);
  EXPECT_EQ(dag.layers()[1], 0u);
  EXPECT_EQ(dag.layers()[2], 1u);
}

TEST(Dag, AnnotationsAreNotNodes) {
  Circuit c;
  c.m(0);
  c.detector({1});
  c.h(0);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.num_nodes(), 2u);
  EXPECT_EQ(dag.instruction_index(0), 0u);
  EXPECT_EQ(dag.instruction_index(1), 2u);
}

TEST(Dag, EdgesFollowQubitOrder) {
  Circuit c;
  c.h(0);       // node 0
  c.cx(0, 1);   // node 1 (dep on 0)
  c.h(1);       // node 2 (dep on 1)
  c.h(2);       // node 3 (independent)
  const CircuitDag dag(c);
  EXPECT_EQ(dag.successors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.successors(1), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(dag.successors(3).empty());
  EXPECT_EQ(dag.predecessors(2), (std::vector<std::size_t>{1}));
}

TEST(Dag, DescendantCountCapturesBlastRadius) {
  // Qubit 0 feeds everything; qubit 3 is used only at the end.
  Circuit c;
  c.cx(0, 1);
  c.cx(1, 2);
  c.cx(2, 3);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.descendant_count(0), 3u);  // all three CNOTs
  EXPECT_EQ(dag.descendant_count(3), 1u);  // only the last
  EXPECT_GT(dag.descendant_count(0), dag.descendant_count(3));
}

TEST(Dag, FirstUseLayer) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.first_use_layer(0), 0u);
  EXPECT_EQ(dag.first_use_layer(1), 1u);
  EXPECT_EQ(dag.first_use_layer(2), 2u);
  // Unused qubit reports the full depth.
  EXPECT_EQ(dag.first_use_layer(99), dag.depth());
}

TEST(Dag, NodesOnQubit) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.h(1);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.nodes_on_qubit(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(dag.nodes_on_qubit(1), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(dag.nodes_on_qubit(9).empty());
}

TEST(Dag, EmptyCircuit) {
  Circuit c(2);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.num_nodes(), 0u);
  EXPECT_EQ(dag.depth(), 0u);
  EXPECT_EQ(dag.descendant_count(0), 0u);
}

}  // namespace
}  // namespace radsurf
