#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace radsurf {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1003;
  std::vector<std::atomic<int>> hits(n);
  parallel_chunks(n, 64, Rng(1), [&](const ChunkRange& r, Rng&) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ZeroWorkIsFine) {
  bool called = false;
  parallel_chunks(0, 16, Rng(1),
                  [&](const ChunkRange&, Rng&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, BadChunkSizeThrows) {
  EXPECT_THROW(parallel_chunks(10, 0, Rng(1), [](const ChunkRange&, Rng&) {}),
               InvalidArgument);
}

TEST(Parallel, ChunkIndexMatchesRngStream) {
  // Chunk c must receive base.stream(c) — determinism independent of
  // scheduling.
  const Rng base(2718);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::uint64_t>> seen;
  parallel_chunks(300, 100, base, [&](const ChunkRange& r, Rng& rng) {
    const std::lock_guard<std::mutex> lock(m);
    seen.emplace_back(r.index, rng.next());
  });
  ASSERT_EQ(seen.size(), 3u);
  for (auto& [index, value] : seen) {
    Rng expect = base.stream(static_cast<unsigned>(index));
    EXPECT_EQ(value, expect.next()) << "chunk " << index;
  }
}

TEST(Parallel, DeterministicAggregateAcrossRuns) {
  auto run = [] {
    std::atomic<std::uint64_t> acc{0};
    parallel_chunks(1000, 37, Rng(99), [&](const ChunkRange& r, Rng& rng) {
      std::uint64_t local = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) local += rng.below(1000);
      acc.fetch_add(local);
    });
    return acc.load();
  };
  EXPECT_EQ(run(), run());
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_chunks(100, 10, Rng(1),
                      [&](const ChunkRange& r, Rng&) {
                        if (r.index == 5) throw InvalidArgument("boom");
                      }),
      InvalidArgument);
}

TEST(Parallel, SerialChunksScopeForcesSerialWithIdenticalResults) {
  EXPECT_FALSE(serial_chunks_active());
  std::vector<std::uint64_t> parallel_draws;
  {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::uint64_t>> draws;
    parallel_chunks(500, 64, Rng(9), [&](const ChunkRange& r, Rng& rng) {
      const std::lock_guard<std::mutex> lock(m);
      draws.push_back({r.index, rng.next()});
    });
    std::sort(draws.begin(), draws.end());
    for (const auto& [index, value] : draws) parallel_draws.push_back(value);
  }
  {
    const SerialChunksScope scope;
    EXPECT_TRUE(serial_chunks_active());
    {
      // Scopes nest.
      const SerialChunksScope inner;
      EXPECT_TRUE(serial_chunks_active());
    }
    EXPECT_TRUE(serial_chunks_active());
    std::vector<std::uint64_t> serial_draws;
    parallel_chunks(500, 64, Rng(9), [&](const ChunkRange&, Rng& rng) {
      serial_draws.push_back(rng.next());  // no lock: serial by contract
    });
    EXPECT_EQ(serial_draws, parallel_draws);
  }
  EXPECT_FALSE(serial_chunks_active());
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace radsurf
