#include "decoder/blossom.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

// Exhaustive minimum-weight perfect matching over subsets (O(n 2^n)),
// ground truth for the blossom implementation.
std::int64_t brute_force_min(const std::vector<std::vector<std::int64_t>>& w,
                             const std::vector<std::vector<bool>>& has) {
  const std::size_t n = w.size();
  const std::size_t full = (std::size_t{1} << n) - 1;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> dp(full + 1, kInf);
  dp[0] = 0;
  for (std::size_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] >= kInf) continue;
    std::size_t i = 0;
    while (i < n && (mask >> i) & 1) ++i;
    if (i == n) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if ((mask >> j) & 1) continue;
      if (!has[i][j]) continue;
      const std::size_t next = mask | (1u << i) | (1u << j);
      dp[next] = std::min(dp[next], dp[mask] + w[i][j]);
    }
  }
  return dp[full];
}

TEST(Blossom, TrivialPair) {
  DenseMatcher m(2);
  m.add_edge(0, 1, 7);
  const auto mate = m.solve();
  EXPECT_EQ(mate[0], 1u);
  EXPECT_EQ(mate[1], 0u);
  EXPECT_EQ(m.matching_weight(), 7);
}

TEST(Blossom, PrefersCheaperPairing) {
  // Square: (0-1) + (2-3) costs 2; (0-3) + (1-2) costs 20.
  DenseMatcher m(4);
  m.add_edge(0, 1, 1);
  m.add_edge(2, 3, 1);
  m.add_edge(0, 3, 10);
  m.add_edge(1, 2, 10);
  const auto mate = m.solve();
  EXPECT_EQ(mate[0], 1u);
  EXPECT_EQ(mate[2], 3u);
  EXPECT_EQ(m.matching_weight(), 2);
}

TEST(Blossom, ForcedExpensiveMatching) {
  // Cheap edges share vertex 0, so the perfect matching must take one
  // cheap and one expensive edge.
  DenseMatcher m(4);
  m.add_edge(0, 1, 1);
  m.add_edge(0, 2, 1);
  m.add_edge(0, 3, 1);
  m.add_edge(1, 2, 50);
  m.add_edge(1, 3, 60);
  m.add_edge(2, 3, 70);
  m.solve();
  EXPECT_EQ(m.matching_weight(), 1 + 50);  // (0,3)+(1,2)? -> 1+50 = 51
}

TEST(Blossom, OddCycleNeedsBlossomShrinking) {
  // Triangle plus pendant vertices: classic blossom case.
  // Nodes 0,1,2 form a cheap triangle; 3,4,5 are pendants.
  DenseMatcher m(6);
  m.add_edge(0, 1, 1);
  m.add_edge(1, 2, 1);
  m.add_edge(0, 2, 1);
  m.add_edge(0, 3, 4);
  m.add_edge(1, 4, 5);
  m.add_edge(2, 5, 6);
  m.add_edge(3, 4, 20);
  m.add_edge(4, 5, 20);
  m.add_edge(3, 5, 20);
  m.solve();
  // Best: one triangle edge + opposite pendant edge + ... enumerate:
  // (0,1)+(2,5)+(3,4)=1+6+20=27; (1,2)+(0,3)+(4,5)=1+4+20=25;
  // (0,2)+(1,4)+(3,5)=1+5+20=26; (0,3)+(1,4)+(2,5)=4+5+6=15. -> 15
  EXPECT_EQ(m.matching_weight(), 15);
}

TEST(Blossom, NoPerfectMatchingThrows) {
  DenseMatcher m(4);
  m.add_edge(0, 1, 1);
  // 2 and 3 share no usable edge.
  m.add_edge(0, 2, 1);
  m.add_edge(0, 3, 1);
  EXPECT_THROW(m.solve(), DecodeError);
}

TEST(Blossom, OddNodeCountRejected) {
  EXPECT_THROW(DenseMatcher m(3), InvalidArgument);
}

TEST(Blossom, BadEdgesRejected) {
  DenseMatcher m(4);
  EXPECT_THROW(m.add_edge(0, 0, 1), InvalidArgument);
  EXPECT_THROW(m.add_edge(0, 4, 1), InvalidArgument);
  EXPECT_THROW(m.add_edge(0, 1, -2), InvalidArgument);
}

TEST(Blossom, KeepsSmallerDuplicateEdge) {
  DenseMatcher m(2);
  m.add_edge(0, 1, 9);
  m.add_edge(0, 1, 4);
  m.add_edge(0, 1, 6);
  m.solve();
  EXPECT_EQ(m.matching_weight(), 4);
}

TEST(Blossom, ZeroWeightEdgesWork) {
  DenseMatcher m(4);
  m.add_edge(0, 1, 0);
  m.add_edge(2, 3, 0);
  m.add_edge(0, 2, 5);
  m.add_edge(1, 3, 5);
  m.solve();
  EXPECT_EQ(m.matching_weight(), 0);
}

class BlossomRandom : public ::testing::TestWithParam<int> {};

TEST_P(BlossomRandom, MatchesBruteForceOnCompleteGraphs) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 40; ++trial) {
    DenseMatcher m(static_cast<std::size_t>(n));
    std::vector<std::vector<std::int64_t>> w(
        n, std::vector<std::int64_t>(n, 0));
    std::vector<std::vector<bool>> has(n, std::vector<bool>(n, false));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const auto weight = static_cast<std::int64_t>(rng.below(100));
        m.add_edge(i, j, weight);
        w[i][j] = w[j][i] = weight;
        has[i][j] = has[j][i] = true;
      }
    }
    const auto mate = m.solve();
    // Valid perfect matching.
    for (int i = 0; i < n; ++i) {
      EXPECT_NE(mate[i], static_cast<std::size_t>(i));
      EXPECT_EQ(mate[mate[i]], static_cast<std::size_t>(i));
    }
    EXPECT_EQ(m.matching_weight(), brute_force_min(w, has))
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlossomRandom,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

TEST(Blossom, MatchesBruteForceOnSparseGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 6 + 2 * static_cast<int>(rng.below(3));  // 6, 8, 10
    std::vector<std::vector<std::int64_t>> w(
        n, std::vector<std::int64_t>(n, 0));
    std::vector<std::vector<bool>> has(n, std::vector<bool>(n, false));
    DenseMatcher m(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (!rng.bernoulli(0.55)) continue;
        const auto weight = static_cast<std::int64_t>(rng.below(50));
        m.add_edge(i, j, weight);
        w[i][j] = w[j][i] = weight;
        has[i][j] = has[j][i] = true;
      }
    }
    const auto expected = brute_force_min(w, has);
    if (expected >= std::numeric_limits<std::int64_t>::max() / 4) {
      EXPECT_THROW(m.solve(), DecodeError) << "trial " << trial;
    } else {
      m.solve();
      EXPECT_EQ(m.matching_weight(), expected) << "trial " << trial;
    }
  }
}

TEST(Blossom, LargeInstanceRuns) {
  // Smoke: 60 nodes complete graph solves quickly and validly.
  const int n = 60;
  Rng rng(5);
  DenseMatcher m(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      m.add_edge(i, j, static_cast<std::int64_t>(rng.below(1000)));
  const auto mate = m.solve();
  for (int i = 0; i < n; ++i) EXPECT_EQ(mate[mate[i]],
                                        static_cast<std::size_t>(i));
}

}  // namespace
}  // namespace radsurf
