// Unit tests of the shared JSON reader/writer (util/json.hpp): value
// model, strict parsing with positioned errors, dump round-trips, and the
// number formatting contract the spec and BENCH layers rely on.
#include "util/json.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e-8").as_number(), 1e-8);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 3u);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ((*a)[0].as_number(), 1.0);
  EXPECT_TRUE((*a)[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\": tru\n}", "test.json");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.json:3:"), std::string::npos) << what;
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1, 2,]"), JsonError);      // trailing comma
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), JsonError);  // trailing comma
  EXPECT_THROW(JsonValue::parse("01"), JsonError);           // leading zero
  EXPECT_THROW(JsonValue::parse("1 2"), JsonError);          // trailing junk
  EXPECT_THROW(JsonValue::parse("{'a': 1}"), JsonError);     // bad key quote
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"), JsonError);  // dup
  EXPECT_THROW(JsonValue::parse(""), JsonError);
}

TEST(Json, TypeMismatchAccessesThrow) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_THROW((void)v[5], JsonError);  // out of range
}

TEST(Json, DumpRoundTripsStructurally) {
  const std::string text =
      R"({"name": "x", "list": [1, 2.5, true, null], "nested": {"k": "v"}})";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(JsonValue::parse(v.dump()), v);
  EXPECT_EQ(JsonValue::parse(v.dump(2)), v);
}

TEST(Json, NumberFormatting) {
  // Integral values print without decimal point or exponent.
  EXPECT_EQ(JsonValue(20240715).dump(), "20240715");
  EXPECT_EQ(JsonValue(0).dump(), "0");
  EXPECT_EQ(JsonValue(-3.0).dump(), "-3");
  // Non-integral values round-trip exactly.
  EXPECT_DOUBLE_EQ(JsonValue::parse(JsonValue(0.1).dump()).as_number(), 0.1);
  EXPECT_DOUBLE_EQ(JsonValue::parse(JsonValue(1e-8).dump()).as_number(),
                   1e-8);
  const double pi = 3.141592653589793;
  EXPECT_DOUBLE_EQ(JsonValue::parse(JsonValue(pi).dump()).as_number(), pi);
}

TEST(Json, ObjectOrderPreservedInDump) {
  const JsonValue v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, EqualityIgnoresObjectOrder) {
  EXPECT_EQ(JsonValue::parse(R"({"a": 1, "b": 2})"),
            JsonValue::parse(R"({"b": 2, "a": 1})"));
  EXPECT_NE(JsonValue::parse(R"({"a": 1})"), JsonValue::parse(R"({"a": 2})"));
  EXPECT_NE(JsonValue::parse("[1, 2]"), JsonValue::parse("[2, 1]"));
}

TEST(Json, SetOverwritesAndPreservesOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("first", 1);
  obj.set("second", 2);
  obj.set("first", 10);
  EXPECT_EQ(obj.dump(), R"({"first":10,"second":2})");
}

TEST(Json, DepthLimitGuardsRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(JsonValue::parse(deep), JsonError);
}

}  // namespace
}  // namespace radsurf
