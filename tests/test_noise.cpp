#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/topologies.hpp"

namespace radsurf {
namespace {

// ---------------------------------------------------------------------------
// Depolarizing instrumentation (Eq. 4)
// ---------------------------------------------------------------------------

TEST(Depolarizing, InsertsChannelAfterEveryUnitary) {
  Circuit c;
  c.r(0);
  c.h(0);
  c.cx(0, 1);
  c.m(1);
  c.detector({1});

  const Circuit noisy = DepolarizingModel{0.01}.apply(c);
  // R, H, DEPOLARIZE1, CX, DEPOLARIZE2, M, DETECTOR.
  ASSERT_EQ(noisy.size(), 7u);
  EXPECT_EQ(noisy.instructions()[2].gate, Gate::DEPOLARIZE1);
  EXPECT_EQ(noisy.instructions()[2].args[0], 0.01);
  EXPECT_EQ(noisy.instructions()[4].gate, Gate::DEPOLARIZE2);
  EXPECT_EQ(noisy.instructions()[5].gate, Gate::M);
  EXPECT_EQ(noisy.instructions()[6].gate, Gate::DETECTOR);
}

TEST(Depolarizing, ZeroRateIsIdentityTransform) {
  Circuit c;
  c.h(0);
  c.m(0);
  EXPECT_EQ(DepolarizingModel{0.0}.apply(c), c);
}

TEST(Depolarizing, NoNoiseAfterNonUnitaries) {
  Circuit c;
  c.r(0);
  c.m(0);
  c.mr(0);
  const Circuit noisy = DepolarizingModel{0.05}.apply(c);
  EXPECT_EQ(noisy.size(), 3u);  // untouched
}

TEST(Depolarizing, IdentityGateGetsNoNoise) {
  // I is a placeholder, not a physical operation.
  Circuit c;
  c.i(0);
  EXPECT_EQ(DepolarizingModel{0.05}.apply(c).size(), 1u);
}

TEST(Depolarizing, UniformVariantSelectable) {
  Circuit c;
  c.cx(0, 1);
  const Circuit noisy = DepolarizingModel{0.02, true}.apply(c);
  EXPECT_EQ(noisy.instructions()[1].gate, Gate::DEPOLARIZE2_UNIFORM);
}

TEST(Depolarizing, InvalidRateRejected) {
  Circuit c;
  c.h(0);
  EXPECT_THROW(DepolarizingModel{-0.1}.apply(c), InvalidArgument);
  EXPECT_THROW(DepolarizingModel{1.5}.apply(c), InvalidArgument);
}

TEST(Depolarizing, MeasurementRecordsUnchanged) {
  Circuit c;
  c.h(0);
  c.m(0);
  c.detector({1});
  const Circuit noisy = DepolarizingModel{0.01}.apply(c);
  EXPECT_EQ(noisy.num_measurements(), c.num_measurements());
  EXPECT_EQ(noisy.num_detectors(), c.num_detectors());
}

// ---------------------------------------------------------------------------
// Radiation model (Eqs. 5-7)
// ---------------------------------------------------------------------------

TEST(Radiation, TemporalDecayMatchesClosedForm) {
  const RadiationModel m;
  EXPECT_DOUBLE_EQ(m.temporal(0.0), 1.0);
  EXPECT_NEAR(m.temporal(0.1), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m.temporal(1.0), std::exp(-10.0), 1e-12);
  EXPECT_THROW(m.temporal(-0.1), InvalidArgument);
  EXPECT_THROW(m.temporal(1.1), InvalidArgument);
}

TEST(Radiation, SpatialDampingMatchesClosedForm) {
  const RadiationModel m;  // n = 1
  EXPECT_DOUBLE_EQ(m.spatial(0), 1.0);
  EXPECT_DOUBLE_EQ(m.spatial(1), 0.25);
  EXPECT_NEAR(m.spatial(2), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(m.spatial(9), 0.01, 1e-12);
}

TEST(Radiation, DecayIsProductOfFactors) {
  const RadiationModel m;
  EXPECT_NEAR(m.decay(0.2, 3), m.temporal(0.2) * m.spatial(3), 1e-15);
}

TEST(Radiation, SampleTimesAreEquidistantFromZero) {
  const RadiationModel m;  // ns = 10
  const auto times = m.sample_times();
  ASSERT_EQ(times.size(), 10u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[9], 0.9);
  const auto values = m.sample_values();
  EXPECT_DOUBLE_EQ(values[0], 1.0);  // 100% at the strike
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LT(values[i], values[i - 1]);  // strictly decaying
}

TEST(Radiation, CustomSampleCount) {
  RadiationModel m;
  m.ns = 4;
  EXPECT_EQ(m.sample_times().size(), 4u);
  m.ns = 0;
  EXPECT_THROW(m.sample_times(), InvalidArgument);
}

TEST(Radiation, QubitProbabilitiesFollowBfsDistance) {
  const RadiationModel m;
  const Graph g = make_linear(5);
  const auto probs = m.qubit_probabilities(g, 2, 1.0);
  ASSERT_EQ(probs.size(), 5u);
  EXPECT_DOUBLE_EQ(probs[2], 1.0);
  EXPECT_DOUBLE_EQ(probs[1], 0.25);
  EXPECT_DOUBLE_EQ(probs[3], 0.25);
  EXPECT_NEAR(probs[0], 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(probs[4], 1.0 / 9.0, 1e-12);
}

TEST(Radiation, SpreadDisabledHitsOnlyRoot) {
  const RadiationModel m;
  const Graph g = make_mesh(3, 3);
  const auto probs = m.qubit_probabilities(g, 4, 0.8, /*spread=*/false);
  for (std::size_t q = 0; q < probs.size(); ++q)
    EXPECT_DOUBLE_EQ(probs[q], q == 4 ? 0.8 : 0.0);
}

TEST(Radiation, RootIntensityScalesField) {
  const RadiationModel m;
  const Graph g = make_mesh(3, 3);
  const auto full = m.qubit_probabilities(g, 0, 1.0);
  const auto half = m.qubit_probabilities(g, 0, 0.5);
  for (std::size_t q = 0; q < full.size(); ++q)
    EXPECT_NEAR(half[q], 0.5 * full[q], 1e-12);
}

TEST(Radiation, BadArgumentsRejected) {
  const RadiationModel m;
  const Graph g = make_linear(3);
  EXPECT_THROW(m.qubit_probabilities(g, 5, 1.0), InvalidArgument);
  EXPECT_THROW(m.qubit_probabilities(g, 0, 1.5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Reset-noise instrumentation
// ---------------------------------------------------------------------------

TEST(ResetNoise, AppendsAfterGatesOnAffectedQubits) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  const Circuit noisy =
      instrument_reset_noise(c, std::vector<double>{0.5, 0.0});
  // H, RESET_ERROR(0)  , CX, RESET_ERROR(0), M.
  ASSERT_EQ(noisy.size(), 5u);
  EXPECT_EQ(noisy.instructions()[1].gate, Gate::RESET_ERROR);
  EXPECT_EQ(noisy.instructions()[1].targets,
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(noisy.instructions()[3].gate, Gate::RESET_ERROR);
  EXPECT_EQ(noisy.instructions()[4].gate, Gate::M);
}

TEST(ResetNoise, TwoQubitGateHitsBothAffectedTargets) {
  Circuit c;
  c.cx(0, 1);
  const Circuit noisy =
      instrument_reset_noise(c, std::vector<double>{0.3, 0.7});
  ASSERT_EQ(noisy.size(), 3u);
  EXPECT_EQ(noisy.instructions()[1].args[0], 0.3);
  EXPECT_EQ(noisy.instructions()[2].args[0], 0.7);
}

TEST(ResetNoise, ShortProbabilityVectorMeansZero) {
  Circuit c;
  c.h(5);
  const Circuit noisy = instrument_reset_noise(c, {});
  EXPECT_EQ(noisy.size(), 1u);
}

TEST(ResetNoise, ErasureProbabilitiesHelper) {
  const auto probs = erasure_probabilities(4, {1, 3});
  EXPECT_EQ(probs, (std::vector<double>{0.0, 1.0, 0.0, 1.0}));
  EXPECT_THROW(erasure_probabilities(2, {5}), InvalidArgument);
}

}  // namespace
}  // namespace radsurf
