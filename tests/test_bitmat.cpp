// Property tests of the 64×64 block-transpose kernel and the BitTable it
// fills: round trips on random (including ragged) shapes, agreement with a
// naive per-bit transpose on both the sparse-scatter and dense-kernel
// paths, and the BitVec scratch helpers the batch pipeline leans on.
#include <gtest/gtest.h>

#include "util/bitmat.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

std::vector<BitVec> random_rows(std::size_t rows, std::size_t cols,
                                double density, Rng& rng) {
  std::vector<BitVec> out(rows, BitVec(cols));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.uniform() < density) out[r].set(c, true);
  return out;
}

BitTable rows_to_table(const std::vector<BitVec>& rows) {
  BitTable t(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < rows[r].size(); ++c)
      if (rows[r].get(c)) t.set(r, c, true);
  return t;
}

TEST(Transpose64, MatchesNaiveOnRandomBlocks) {
  Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    BitTable::Word block[64];
    for (auto& w : block) w = rng.next();
    BitTable::Word original[64];
    std::copy(std::begin(block), std::end(block), std::begin(original));
    transpose64x64(block);
    for (std::size_t i = 0; i < 64; ++i)
      for (std::size_t j = 0; j < 64; ++j)
        EXPECT_EQ((block[i] >> j) & 1u, (original[j] >> i) & 1u)
            << "element (" << i << ", " << j << ")";
  }
}

TEST(Transpose64, DoubleTransposeIsIdentity) {
  Rng rng(12);
  BitTable::Word block[64];
  for (auto& w : block) w = rng.next();
  BitTable::Word original[64];
  std::copy(std::begin(block), std::end(block), std::begin(original));
  transpose64x64(block);
  transpose64x64(block);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(block[i], original[i]);
}

// Shapes straddling every alignment case: single block, exact multiples,
// ragged tails in one or both dimensions, degenerate single row/column.
struct Shape {
  std::size_t rows, cols;
};
const Shape kShapes[] = {{1, 1},     {1, 200},  {12, 256}, {64, 64},
                         {65, 100},  {100, 65}, {3, 1024}, {130, 7},
                         {128, 192}, {77, 513}};

TEST(TransposeBits, MatchesNaiveTransposeAcrossShapesAndDensities) {
  Rng rng(13);
  // 0.01 exercises the sparse-scatter path, 0.5 the dense masked-swap
  // kernel, and the mix ensures both appear across blocks of one matrix.
  for (const double density : {0.01, 0.2, 0.5}) {
    for (const Shape& shape : kShapes) {
      const auto rows = random_rows(shape.rows, shape.cols, density, rng);
      BitTable out;
      transpose_bits(rows, out);
      ASSERT_EQ(out.num_rows(), shape.cols);
      ASSERT_EQ(out.num_cols(), shape.rows);
      for (std::size_t r = 0; r < shape.rows; ++r)
        for (std::size_t c = 0; c < shape.cols; ++c)
          ASSERT_EQ(out.get(c, r), rows[r].get(c))
              << shape.rows << "x" << shape.cols << " density " << density
              << " at (" << r << ", " << c << ")";
    }
  }
}

TEST(TransposeBits, TableRoundTripIsIdentity) {
  Rng rng(14);
  for (const Shape& shape : kShapes) {
    const auto rows = random_rows(shape.rows, shape.cols, 0.3, rng);
    const BitTable original = rows_to_table(rows);
    BitTable once, twice;
    transpose_bits(original, once);
    transpose_bits(once, twice);
    EXPECT_EQ(twice, original)
        << "round trip failed for " << shape.rows << "x" << shape.cols;
  }
}

TEST(TransposeBits, EmptyAndDegenerateShapes) {
  BitTable out;
  transpose_bits(std::vector<BitVec>{}, out);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.num_cols(), 0u);

  // Zero-width rows: a 3x0 matrix transposes to 0x3.
  transpose_bits(std::vector<BitVec>(3, BitVec(0)), out);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.num_cols(), 3u);
}

TEST(TransposeBits, RaggedInputRowsAreRejected) {
  std::vector<BitVec> rows;
  rows.emplace_back(10);
  rows.emplace_back(11);
  BitTable out;
  EXPECT_THROW(transpose_bits(rows, out), Error);
}

TEST(BitTable, RowOrAndReshapeReuse) {
  BitTable t(4, 130);
  EXPECT_EQ(t.words_per_row(), 3u);
  EXPECT_EQ(t.row_or(2), 0u);
  t.set(2, 129, true);
  EXPECT_NE(t.row_or(2), 0u);
  EXPECT_TRUE(t.get(2, 129));
  // Reshape zeroes previous content, whatever the prior shape.
  t.reshape(2, 64);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.words_per_row(), 1u);
  EXPECT_EQ(t.row_or(0), 0u);
  EXPECT_EQ(t.row_or(1), 0u);
}

TEST(BitVecHelpers, ResetResizesAndZeroes) {
  BitVec v(10);
  v.set(3, true);
  v.reset(200);
  EXPECT_EQ(v.size(), 200u);
  EXPECT_TRUE(v.none());
  v.set(199, true);
  v.reset(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_TRUE(v.none());
}

TEST(BitVecHelpers, AssignXorMatchesOperator) {
  Rng rng(15);
  BitVec a(100), b(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a.set(i, rng.next() & 1);
    b.set(i, rng.next() & 1);
  }
  BitVec expected = a;
  expected ^= b;
  BitVec out;  // starts empty: assign_xor must resize
  out.assign_xor(a, b);
  EXPECT_EQ(out, expected);
}

TEST(BitVecHelpers, AppendSetBitsMatchesSetBits) {
  Rng rng(16);
  BitVec v(300);
  for (std::size_t i = 0; i < 300; ++i) v.set(i, rng.uniform() < 0.05);
  std::vector<std::uint32_t> appended{7};  // pre-existing content survives
  v.append_set_bits(appended);
  const auto expected = v.set_bits();
  ASSERT_EQ(appended.size(), expected.size() + 1);
  EXPECT_EQ(appended[0], 7u);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(appended[i + 1], expected[i]);
}

}  // namespace
}  // namespace radsurf
