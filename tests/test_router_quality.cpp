// Routing-quality tests: the lookahead router and the layout strategies
// must deliver the paper's Sec. V-D claims (repetition is nearly free on a
// line; AUTO never does worse than its constituents).
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "stab/tableau_sim.hpp"
#include "transpile/transpiler.hpp"

namespace radsurf {
namespace {

void expect_respects_coupling(const Circuit& c, const Graph& arch) {
  for (const Instruction& ins : c.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (!info.is_unitary || !info.is_two_qubit) continue;
    for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2)
      ASSERT_TRUE(arch.has_edge(ins.targets[i], ins.targets[i + 1]));
  }
}

TEST(RouterQuality, RepetitionOnLinearIsNearlyFree) {
  // The stabilizer rounds are nearest-neighbour; only the readout chain
  // moves the ancilla.  Budget: ~2 swaps per data qubit.
  for (int d : {5, 11, 15}) {
    const RepetitionCode code(d, RepetitionFlavor::BIT_FLIP);
    const auto result =
        transpile(code.build(), make_linear(2 * static_cast<std::size_t>(d)),
                  {});
    EXPECT_LE(result.swap_count, static_cast<std::size_t>(2 * d + 4))
        << "d=" << d;
    expect_respects_coupling(result.circuit,
                             make_linear(2 * static_cast<std::size_t>(d)));
  }
}

TEST(RouterQuality, AutoNeverWorseThanFixedStrategies) {
  const XXZZCode code(3, 3);
  const Circuit logical = code.build();
  for (const char* arch_name : {"mesh:5x4", "linear:18", "cairo"}) {
    const Graph arch = make_topology(arch_name);
    const auto auto_result =
        transpile(logical, arch, {LayoutStrategy::AUTO});
    for (auto strategy : {LayoutStrategy::DEGREE_GREEDY,
                          LayoutStrategy::INTERACTION_CHAIN}) {
      const auto fixed = transpile(logical, arch, {strategy});
      EXPECT_LE(auto_result.swap_count, fixed.swap_count)
          << arch_name << " strategy "
          << static_cast<int>(strategy);
    }
  }
}

TEST(RouterQuality, InteractionChainLayoutIsInjective) {
  const RepetitionCode code(7, RepetitionFlavor::BIT_FLIP);
  const auto layout = choose_layout(code.build(), make_linear(14),
                                    LayoutStrategy::INTERACTION_CHAIN);
  std::vector<char> used(14, 0);
  for (std::uint32_t p : layout) {
    ASSERT_LT(p, 14u);
    EXPECT_FALSE(used[p]) << "physical qubit mapped twice";
    used[p] = 1;
  }
}

TEST(RouterQuality, AutoRejectedInChooseLayout) {
  Circuit c;
  c.cx(0, 1);
  EXPECT_THROW(choose_layout(c, make_linear(3), LayoutStrategy::AUTO),
               InvalidArgument);
}

TEST(RouterQuality, LookaheadPreservesSemantics) {
  // Deterministic circuit with a readout-chain pattern (the case the
  // lookahead reorders): semantics must be identical to the logical run.
  Circuit c;
  c.x(0);
  c.x(2);
  for (std::uint32_t q = 0; q < 4; ++q) c.cx(q, 4);  // star onto qubit 4
  for (std::uint32_t q = 0; q < 5; ++q) c.m(q);

  for (const char* arch_name : {"linear:8", "mesh:5x2", "cairo"}) {
    const Graph arch = make_topology(arch_name);
    const auto result = transpile(c, arch, {});
    expect_respects_coupling(result.circuit, arch);
    TableauSimulator logical(c);
    TableauSimulator physical(result.circuit);
    EXPECT_EQ(logical.reference_sample(), physical.reference_sample())
        << arch_name;
  }
}

TEST(RouterQuality, StarCircuitCheaperWithLookahead) {
  // A star of CNOTs onto one hub: the lookahead should walk the hub, not
  // drag every spoke across the line.  Budget well below the naive
  // quadratic cost.
  Circuit c;
  const int n = 10;
  for (std::uint32_t q = 0; q + 1 < n; ++q)
    c.cx(q, static_cast<std::uint32_t>(n - 1));
  const auto result =
      transpile(c, make_linear(n), {LayoutStrategy::TRIVIAL});
  // Naive (always move the spoke) costs ~sum of distances ~ n^2/2 = 50;
  // walking the hub costs ~n.
  EXPECT_LE(result.swap_count, static_cast<std::size_t>(2 * n));
}

TEST(RouterQuality, XxzzRoutedCircuitsStayDecodable) {
  // After routing on every architecture the DEM must stay matchable
  // enough for the decoder to be built (spot check via an engine-less
  // path: detectors preserved + coupling respected).
  const XXZZCode code(3, 3);
  const Circuit logical = code.build();
  for (const char* arch_name :
       {"mesh:5x4", "almaden", "johannesburg", "cambridge"}) {
    const Graph arch = make_topology(arch_name);
    const auto result = transpile(logical, arch, {});
    EXPECT_EQ(result.circuit.num_detectors(), logical.num_detectors());
    EXPECT_EQ(result.circuit.num_measurements(),
              logical.num_measurements());
    expect_respects_coupling(result.circuit, arch);
  }
}

}  // namespace
}  // namespace radsurf
