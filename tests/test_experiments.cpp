#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.hpp"

namespace radsurf {
namespace {

ExperimentOptions tiny() {
  ExperimentOptions opts;
  opts.shots = 40;  // smoke-level statistics
  opts.seed = 7;
  return opts;
}

TEST(Options, ArgParsing) {
  const char* argv[] = {"bin", "--shots", "123", "--seed", "9", "--csv"};
  const auto opts =
      ExperimentOptions::from_args(6, const_cast<char**>(argv));
  EXPECT_EQ(opts.shots, 123u);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_TRUE(opts.csv);

  const char* bad[] = {"bin", "--frobnicate"};
  EXPECT_THROW(ExperimentOptions::from_args(2, const_cast<char**>(bad)),
               InvalidArgument);
}

TEST(Options, ShotResolutionPrecedence) {
  unsetenv("RADSURF_SHOTS");
  unsetenv("RADSURF_FAST");
  ExperimentOptions opts;
  EXPECT_EQ(opts.resolve_shots(500), 500u);
  opts.shots = 90;
  EXPECT_EQ(opts.resolve_shots(500), 90u);
  opts.shots = 0;
  setenv("RADSURF_SHOTS", "333", 1);
  EXPECT_EQ(opts.resolve_shots(500), 333u);
  setenv("RADSURF_FAST", "1", 1);
  EXPECT_EQ(opts.resolve_shots(500), 33u);
  unsetenv("RADSURF_SHOTS");
  unsetenv("RADSURF_FAST");
}

TEST(Options, MinimumShotsFloor) {
  unsetenv("RADSURF_SHOTS");
  ExperimentOptions opts;
  opts.shots = 1;
  EXPECT_EQ(opts.resolve_shots(500), 20u);
}

TEST(Fig3, SeriesMatchesClosedForm) {
  const auto report = fig3_temporal_decay();
  EXPECT_GT(report.table.num_rows(), 10u);
  EXPECT_FALSE(report.notes.empty());
  const std::string s = report.to_string();
  EXPECT_NE(s.find("Fig. 3"), std::string::npos);
}

TEST(Fig4, HeatmapHasPeakAtOrigin) {
  const auto report = fig4_spatial_decay();
  const std::string s = report.to_string();
  EXPECT_NE(s.find("Fig. 4"), std::string::npos);
  // S(0) = 1 must appear for the origin row.
  EXPECT_NE(s.find("1.000000"), std::string::npos);
}

TEST(Fig5, SmokeRunProducesLandscape) {
  const auto report = fig5_noise_vs_radiation(tiny());
  // 2 codes x 8 p-values x 10 samples.
  EXPECT_EQ(report.table.num_rows(), 2u * 8u * 10u);
  EXPECT_GE(report.notes.size(), 3u);
}

TEST(Fig6, SmokeRunCoversAllDistances) {
  // 7 repetition + 5 xxzz + 2 memory bases x default rotated_distances {3,5}.
  const auto report = fig6_code_distance(tiny());
  EXPECT_EQ(report.table.num_rows(), 16u);

  Fig6Options no_rotated;
  no_rotated.rotated_distances.clear();
  EXPECT_EQ(fig6_code_distance(tiny(), no_rotated).table.num_rows(), 12u);
}

TEST(Fig7, SmokeRunHasSubgraphSweep) {
  const auto report = fig7_fault_spread(tiny());
  EXPECT_GT(report.table.num_rows(), 20u);
  EXPECT_GE(report.notes.size(), 2u);
}

TEST(Fig8, SmokeRunCoversArchitectures) {
  ExperimentOptions opts = tiny();
  opts.shots = 25;
  const auto report = fig8_architecture(opts);
  // One row per active qubit per (code, arch) pair; at least 22 + 18 rows.
  EXPECT_GT(report.table.num_rows(), 40u);
  // Summaries for all 12 configurations plus the paper note.
  EXPECT_GE(report.notes.size(), 12u);
}

TEST(ScaledMesh, FollowsPaperRule) {
  EXPECT_EQ(scaled_mesh_for(6).num_nodes(), 10u);    // 5x2
  EXPECT_EQ(scaled_mesh_for(10).num_nodes(), 10u);   // 5x2
  EXPECT_EQ(scaled_mesh_for(18).num_nodes(), 20u);   // 5x4
  EXPECT_EQ(scaled_mesh_for(30).num_nodes(), 30u);   // 5x6
  EXPECT_EQ(scaled_mesh_for(22).num_nodes(), 25u);   // 5x5
}

TEST(Report, CsvRendering) {
  const auto report = fig3_temporal_decay();
  const std::string csv = report.to_string(/*csv=*/true);
  EXPECT_NE(csv.find("t,T(t)"), std::string::npos);
}

}  // namespace
}  // namespace radsurf
