// Tests of the single shared-instant erasure sampler (paper Figs 6-7) and
// the radiation-aware decoder extension.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

TEST(ErasureSampler, NoCorruptedQubitsMatchesPlainSample) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng r1(7), r2(7);
  // Empty corrupted set must not consume extra randomness.
  EXPECT_EQ(sim.sample_with_erasure(r1, {}), sim.sample(r2));
}

TEST(ErasureSampler, ResetBeforeAnyGateIsHarmlessOnZeros) {
  // Circuit where the only qubit starts |0>: an erasure landing anywhere
  // before the X gate resets |0> -> |0>; after the X it wipes the flip.
  Circuit c;
  c.r(0);
  c.x(0);
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(11);
  int wiped = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i)
    wiped += !sim.sample_with_erasure(rng, {0}).get(0);
  // 3 physical ops (R, X, M); strike before R or X is harmless, before M
  // wipes: expect ~1/3 wiped.
  EXPECT_NEAR(wiped / static_cast<double>(n), 1.0 / 3.0, 0.04);
}

TEST(ErasureSampler, SharedInstantHitsAllQubitsTogether) {
  // Two qubits both |1> via one transversal X; erasure of both at a shared
  // instant gives correlated wipes: records are (1,1) or (0,0), never
  // mixed (a strike between separate X gates could split them).
  Circuit c;
  c.r(0);
  c.r(1);
  c.append(Gate::X, {0, 1});
  c.append(Gate::M, {0, 1});
  TableauSimulator sim(c);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const BitVec rec = sim.sample_with_erasure(rng, {0, 1});
    EXPECT_EQ(rec.get(0), rec.get(1)) << "strike must be shared";
  }
}

TEST(ErasureSampler, OutOfRangeQubitRejected) {
  Circuit c;
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(1);
  // Qubit 5 is outside the 1-qubit circuit; the strike instant always
  // lands on the single instruction, so the check always fires.
  EXPECT_THROW(sim.sample_with_erasure(rng, {5}), InvalidArgument);
}

TEST(ErasureCampaign, SingleInstantMilderThanSustained) {
  // A single reset is strictly less damaging than resetting after every
  // gate (the sustained t=0 radiation limit).
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const std::uint32_t root = engine.active_qubits()[1];
  const auto single = engine.run_erasure({root}, 1500, 3);
  const auto sustained = engine.run_sustained_erasure({root}, 1500, 3);
  EXPECT_LT(single.rate(), sustained.rate() + 0.03);
}

TEST(ErasureCampaign, MoreCorruptedQubitsMoreDamage) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto& active = engine.active_qubits();
  const auto one = engine.run_erasure({active[0]}, 1200, 5);
  std::vector<std::uint32_t> many(active.begin(),
                                  active.begin() + active.size() / 2);
  const auto half = engine.run_erasure(many, 1200, 5);
  EXPECT_GT(half.rate() + 0.05, one.rate());
}

TEST(AwareDecoder, NoWorseThanStandardAtStrike) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto standard = engine.run_radiation_at(2, 1.0, true, 1200, 9);
  const auto aware = engine.run_radiation_at_aware(2, 1.0, true, 1200, 9);
  // The aware decoder has strictly more information; allow statistical
  // slack but no systematic regression.
  EXPECT_LE(aware.rate(), standard.rate() + 0.05);
}

TEST(AwareDecoder, MatchesStandardWithoutRadiation) {
  // With a zero-intensity strike the aware graph collapses to the
  // standard one (reset probabilities all 0).
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const auto standard = engine.run_radiation_at(0, 0.0, true, 800, 11);
  const auto aware = engine.run_radiation_at_aware(0, 0.0, true, 800, 11);
  EXPECT_EQ(aware.successes, standard.successes);
}

TEST(AwareDecoder, DemIncludesResetMechanisms) {
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.m(0);
  c.detector({1});
  DemOptions opts;
  opts.include_reset_approximation = true;
  const auto dem = DetectorErrorModel::from_circuit(c, opts);
  ASSERT_EQ(dem.mechanisms.size(), 1u);  // X part visible, Z invisible
  EXPECT_DOUBLE_EQ(dem.mechanisms[0].probability, 0.25);
  const auto plain = DetectorErrorModel::from_circuit(c);
  EXPECT_TRUE(plain.mechanisms.empty());
}

}  // namespace
}  // namespace radsurf
