// Tests of the single shared-instant erasure sampler (paper Figs 6-7) and
// the radiation-aware decoder extension.
#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

TEST(ErasureSampler, NoCorruptedQubitsMatchesPlainSample) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng r1(7), r2(7);
  // Empty corrupted set must not consume extra randomness.
  EXPECT_EQ(sim.sample_with_erasure(r1, {}), sim.sample(r2));
}

TEST(ErasureSampler, ResetBeforeAnyGateIsHarmlessOnZeros) {
  // Circuit where the only qubit starts |0>: an erasure landing anywhere
  // before the X gate resets |0> -> |0>; after the X it wipes the flip.
  Circuit c;
  c.r(0);
  c.x(0);
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(11);
  int wiped = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i)
    wiped += !sim.sample_with_erasure(rng, {0}).get(0);
  // 3 physical ops (R, X, M); strike before R or X is harmless, before M
  // wipes: expect ~1/3 wiped.
  EXPECT_NEAR(wiped / static_cast<double>(n), 1.0 / 3.0, 0.04);
}

TEST(ErasureSampler, SharedInstantHitsAllQubitsTogether) {
  // Two qubits both |1> via one transversal X; erasure of both at a shared
  // instant gives correlated wipes: records are (1,1) or (0,0), never
  // mixed (a strike between separate X gates could split them).
  Circuit c;
  c.r(0);
  c.r(1);
  c.append(Gate::X, {0, 1});
  c.append(Gate::M, {0, 1});
  TableauSimulator sim(c);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const BitVec rec = sim.sample_with_erasure(rng, {0, 1});
    EXPECT_EQ(rec.get(0), rec.get(1)) << "strike must be shared";
  }
}

TEST(ErasureSampler, OutOfRangeQubitRejected) {
  Circuit c;
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(1);
  // Qubit 5 is outside the 1-qubit circuit; the strike instant always
  // lands on the single instruction, so the check always fires.
  EXPECT_THROW(sim.sample_with_erasure(rng, {5}), InvalidArgument);
}

TEST(ErasureCampaign, SingleInstantMilderThanSustained) {
  // A single reset is strictly less damaging than resetting after every
  // gate (the sustained t=0 radiation limit).
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const std::uint32_t root = engine.active_qubits()[1];
  const auto single = engine.run_erasure({root}, 1500, 3);
  const auto sustained = engine.run_sustained_erasure({root}, 1500, 3);
  EXPECT_LT(single.rate(), sustained.rate() + 0.03);
}

TEST(ErasureCampaign, MoreCorruptedQubitsMoreDamage) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto& active = engine.active_qubits();
  const auto one = engine.run_erasure({active[0]}, 1200, 5);
  std::vector<std::uint32_t> many(active.begin(),
                                  active.begin() + active.size() / 2);
  const auto half = engine.run_erasure(many, 1200, 5);
  EXPECT_GT(half.rate() + 0.05, one.rate());
}

TEST(AwareDecoder, NoWorseThanStandardAtStrike) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto standard = engine.run_radiation_at(2, 1.0, true, 1200, 9);
  const auto aware = engine.run_radiation_at_aware(2, 1.0, true, 1200, 9);
  // The aware decoder has strictly more information; allow statistical
  // slack but no systematic regression.
  EXPECT_LE(aware.rate(), standard.rate() + 0.05);
}

TEST(AwareDecoder, MatchesStandardWithoutRadiation) {
  // With a zero-intensity strike the aware graph collapses to the
  // standard one (reset probabilities all 0).
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  const auto standard = engine.run_radiation_at(0, 0.0, true, 800, 11);
  const auto aware = engine.run_radiation_at_aware(0, 0.0, true, 800, 11);
  EXPECT_EQ(aware.successes, standard.successes);
}

// --- frame-vs-tableau cross-validation of the heralded-reset fast path ----
//
// The same radiation/erasure campaign is run through the batched frame
// engine (SamplingPath::AUTO, the default) and the exact per-shot tableau
// engine (SamplingPath::EXACT).  The logical-error proportions must agree
// statistically: the pooled two-proportion z (z^2 = chi-square of the 2x2
// table) stays below 4 — a fixed-seed deterministic check at far beyond
// the 99.99% level.

namespace {
EngineOptions path_options(SamplingPath path) {
  EngineOptions opts;
  opts.sampling_path = path;
  return opts;
}
}  // namespace

TEST(FrameCrossValidation, RepetitionRadiationCampaign) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine frame(code, make_mesh(5, 2),
                        path_options(SamplingPath::AUTO));
  InjectionEngine exact(code, make_mesh(5, 2),
                        path_options(SamplingPath::EXACT));
  const Proportion pf = frame.run_radiation_at(2, 1.0, true, 4000, 1234);
  const Proportion pe = exact.run_radiation_at(2, 1.0, true, 4000, 1234);
  EXPECT_GT(pf.rate(), 0.0);  // the campaign must actually stress the code
  EXPECT_LT(std::abs(two_proportion_z(pf, pe)), 4.0)
      << "frame " << pf.rate() << " vs exact " << pe.rate();
}

TEST(FrameCrossValidation, RepetitionRadiationDecaySample) {
  // Mid-decay intensity exercises partial heralds rather than certain ones.
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine frame(code, make_mesh(5, 2),
                        path_options(SamplingPath::AUTO));
  InjectionEngine exact(code, make_mesh(5, 2),
                        path_options(SamplingPath::EXACT));
  const Proportion pf = frame.run_radiation_at(2, 0.35, true, 4000, 77);
  const Proportion pe = exact.run_radiation_at(2, 0.35, true, 4000, 77);
  EXPECT_LT(std::abs(two_proportion_z(pf, pe)), 4.0)
      << "frame " << pf.rate() << " vs exact " << pe.rate();
}

TEST(FrameCrossValidation, XxzzRadiationCampaign) {
  const XXZZCode code(3, 3);
  InjectionEngine frame(code, make_mesh(5, 4),
                        path_options(SamplingPath::AUTO));
  InjectionEngine exact(code, make_mesh(5, 4),
                        path_options(SamplingPath::EXACT));
  const Proportion pf = frame.run_radiation_at(2, 1.0, true, 3000, 4321);
  const Proportion pe = exact.run_radiation_at(2, 1.0, true, 3000, 4321);
  EXPECT_GT(pf.rate(), 0.0);
  EXPECT_LT(std::abs(two_proportion_z(pf, pe)), 4.0)
      << "frame " << pf.rate() << " vs exact " << pe.rate();
}

TEST(FrameCrossValidation, SharedInstantErasureCampaign) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine frame(code, make_mesh(5, 2),
                        path_options(SamplingPath::AUTO));
  InjectionEngine exact(code, make_mesh(5, 2),
                        path_options(SamplingPath::EXACT));
  const std::vector<std::uint32_t> corrupted = {frame.active_qubits()[0],
                                                frame.active_qubits()[1]};
  const Proportion pf = frame.run_erasure(corrupted, 4000, 555);
  const Proportion pe = exact.run_erasure(corrupted, 4000, 555);
  EXPECT_LT(std::abs(two_proportion_z(pf, pe)), 4.0)
      << "frame " << pf.rate() << " vs exact " << pe.rate();
}

TEST(FrameCrossValidation, XxzzErasureCampaign) {
  const XXZZCode code(3, 3);
  InjectionEngine frame(code, make_mesh(5, 4),
                        path_options(SamplingPath::AUTO));
  InjectionEngine exact(code, make_mesh(5, 4),
                        path_options(SamplingPath::EXACT));
  const std::vector<std::uint32_t> corrupted = {frame.active_qubits()[0]};
  const Proportion pf = frame.run_erasure(corrupted, 3000, 9);
  const Proportion pe = exact.run_erasure(corrupted, 3000, 9);
  EXPECT_LT(std::abs(two_proportion_z(pf, pe)), 4.0)
      << "frame " << pf.rate() << " vs exact " << pe.rate();
}

TEST(DecodeCache, CachedCampaignIsBitIdenticalToUncached) {
  // Memoization must never change a prediction, only skip recomputation.
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  EngineOptions cached_opts;
  cached_opts.decode_cache = true;
  EngineOptions plain_opts;
  plain_opts.decode_cache = false;
  InjectionEngine cached(code, make_mesh(5, 2), cached_opts);
  InjectionEngine plain(code, make_mesh(5, 2), plain_opts);
  const Proportion pc = cached.run_radiation_at(2, 1.0, true, 1500, 42);
  const Proportion pp = plain.run_radiation_at(2, 1.0, true, 1500, 42);
  EXPECT_EQ(pc.successes, pp.successes);
  const DecodeCacheStats stats = cached.decode_cache_stats();
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits, 0u);  // radiation syndromes repeat heavily
  EXPECT_EQ(plain.decode_cache_stats().lookups, 0u);
}

TEST(AwareDecoder, DemIncludesResetMechanisms) {
  Circuit c;
  c.r(0);
  c.i(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.m(0);
  c.detector({1});
  DemOptions opts;
  opts.include_reset_approximation = true;
  const auto dem = DetectorErrorModel::from_circuit(c, opts);
  ASSERT_EQ(dem.mechanisms.size(), 1u);  // X part visible, Z invisible
  EXPECT_DOUBLE_EQ(dem.mechanisms[0].probability, 0.25);
  const auto plain = DetectorErrorModel::from_circuit(c);
  EXPECT_TRUE(plain.mechanisms.empty());
}

}  // namespace
}  // namespace radsurf
