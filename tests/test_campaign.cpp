#include "inject/campaign.hpp"

#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/results.hpp"

namespace radsurf {
namespace {

EngineOptions fast_options() {
  EngineOptions opts;
  opts.shots_per_chunk = 64;
  return opts;
}

TEST(Campaign, PipelineIntrospection) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  EXPECT_EQ(engine.architecture().num_nodes(), 10u);
  EXPECT_GE(engine.active_qubits().size(), code.num_qubits());
  EXPECT_GT(engine.matching_graph().edges().size(), 0u);
  // Routed circuits can contain rare hook/routing mechanisms whose
  // detector signature cannot be decomposed into matchable edges; they
  // must stay a small handful.
  EXPECT_LE(engine.error_model().num_unmatched, 8u);
  EXPECT_EQ(engine.transpiled().initial_layout.size(), code.num_qubits());
}

TEST(Campaign, RolesMapThroughLayout) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  std::size_t data = 0, stab = 0, anc = 0;
  for (std::uint32_t q = 0; q < engine.architecture().num_nodes(); ++q) {
    switch (engine.role_of_physical(q)) {
      case QubitRole::DATA: ++data; break;
      case QubitRole::STABILIZER: ++stab; break;
      case QubitRole::ANCILLA: ++anc; break;
    }
  }
  EXPECT_EQ(data, 3u);
  EXPECT_EQ(stab, 2u);
  // Unplaced physical qubits default to ancilla-like.
  EXPECT_GE(anc, 1u);
}

TEST(Campaign, NoNoiseNoErrors) {
  // Paper Sec. IV-C: without radiation, the tested configurations decode
  // cleanly; with p=0 sampling noise the LER must be exactly 0.
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  EngineOptions opts = fast_options();
  opts.physical_error_rate = 0.0;
  InjectionEngine engine(code, make_mesh(5, 2), opts);
  const Proportion res = engine.run_intrinsic(200, 1);
  EXPECT_EQ(res.successes, 0u);
  EXPECT_EQ(res.trials, 200u);
}

TEST(Campaign, IntrinsicNoiseProducesLowErrorRate) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  const Proportion res = engine.run_intrinsic(800, 2);
  // p = 1e-2 default: some logical errors, but far from radiation levels.
  EXPECT_LT(res.rate(), 0.2);
}

TEST(Campaign, SeedDeterminism) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), fast_options());
  const Proportion a = engine.run_radiation_at(2, 1.0, true, 300, 99);
  const Proportion b = engine.run_radiation_at(2, 1.0, true, 300, 99);
  EXPECT_EQ(a.successes, b.successes);
  const Proportion c = engine.run_radiation_at(2, 1.0, true, 300, 100);
  // Different seed: almost surely different counts (not guaranteed, but
  // equality of all three would indicate a seeding bug).
  EXPECT_TRUE(a.successes != c.successes || a.rate() > 0.0);
}

TEST(Campaign, RadiationRaisesErrorAboveIntrinsic) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  const Proportion intrinsic = engine.run_intrinsic(600, 5);
  const Proportion strike = engine.run_radiation_at(2, 1.0, true, 600, 5);
  EXPECT_GT(strike.rate(), intrinsic.rate());
  EXPECT_GT(strike.rate(), 0.05);
}

TEST(Campaign, RadiationDecaysOverEvent) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  const auto series = engine.run_radiation_event(2, 400, 7);
  ASSERT_EQ(series.size(), engine.radiation().ns);
  // Early samples (strike) must be worse than the last (fault almost
  // extinguished).
  EXPECT_GT(series.front().rate(), series.back().rate());
}

TEST(Campaign, SpreadWorseThanNoSpread) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), fast_options());
  const Proportion spread = engine.run_radiation_at(2, 1.0, true, 2400, 11);
  const Proportion local = engine.run_radiation_at(2, 1.0, false, 2400, 11);
  // Obs. V: the spatially correlated fault is comparably damaging.  At
  // full intensity the local strike saturates its footprint, so the
  // spread variant lands within a tenth of it rather than above (the
  // measured gap on this cell is ~0.07 at 60k shots); the spread
  // advantage shows at partial intensities and larger distances.
  EXPECT_GE(spread.rate() + 0.1, local.rate());
}

TEST(Campaign, ErasingEverythingIsCatastrophic) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  const Proportion all = engine.run_erasure(
      engine.active_qubits(), 400, 13);
  const Proportion one = engine.run_erasure(
      {engine.active_qubits()[0]}, 400, 13);
  EXPECT_GT(all.rate(), one.rate());
  EXPECT_GT(all.rate(), 0.3);
}

TEST(Campaign, DecoderKindsAllRun) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  for (auto kind :
       {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
    EngineOptions opts = fast_options();
    opts.decoder = kind;
    InjectionEngine engine(code, make_mesh(5, 2), opts);
    const Proportion res = engine.run_radiation_at(0, 0.5, true, 150, 17);
    EXPECT_EQ(res.trials, 150u);
  }
}

TEST(Campaign, ResetProbsValidation) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), fast_options());
  EXPECT_THROW(engine.run_erasure({99}, 10, 1), InvalidArgument);
  EXPECT_THROW(engine.run_radiation_at(99, 1.0, true, 10, 1),
               InvalidArgument);
}

TEST(Campaign, TooSmallArchitectureRejected) {
  const XXZZCode code(3, 3);
  EXPECT_THROW(
      InjectionEngine(code, make_mesh(2, 2), fast_options()),
      TranspileError);
}

TEST(Results, AggregationHelpers) {
  const std::vector<Proportion> props = {{1, 10}, {5, 10}, {3, 10}};
  EXPECT_DOUBLE_EQ(median_rate(props), 0.3);
  EXPECT_NEAR(mean_rate(props), 0.3, 1e-12);
  const Proportion pooled = pool(props);
  EXPECT_EQ(pooled.successes, 9u);
  EXPECT_EQ(pooled.trials, 30u);
  const std::string s = format_rate_ci({25, 100});
  EXPECT_NE(s.find("25.0%"), std::string::npos);
  EXPECT_NE(s.find('['), std::string::npos);
}

// The paper's headline qualitative result, in miniature (Obs. IV): with an
// equal qubit budget, bit-flip protection beats phase-flip protection
// against reset faults.
TEST(Campaign, BitFlipBeatsPhaseFlipAgainstResets) {
  const XXZZCode bitflip(3, 1);
  const XXZZCode phaseflip(1, 3);
  InjectionEngine eb(bitflip, make_mesh(5, 2), fast_options());
  InjectionEngine ep(phaseflip, make_mesh(5, 2), fast_options());
  // Median over roots of a single non-spreading erasure, as in Fig. 6.
  auto median_ler = [](InjectionEngine& e) {
    std::vector<Proportion> per_root;
    std::uint64_t salt = 0;
    for (std::uint32_t root : e.active_qubits())
      per_root.push_back(e.run_erasure({root}, 500, 1000 + 31 * ++salt));
    return median_rate(per_root);
  };
  EXPECT_LT(median_ler(eb), median_ler(ep) + 0.02);
}

}  // namespace
}  // namespace radsurf
