// The `radsurf` CLI: spec-driven experiment runner over the scenario
// registry.  `radsurf help` prints usage; docs/SCENARIOS.md documents the
// spec schema and the specs/ cookbook.
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::radsurf_cli_main(argc, argv);
}
