// Performance: stabilizer simulation throughput (the enabler of the
// paper's 400M-injection scale) — exact per-shot tableau sampling, batched
// frame sampling, and the heralded-reset radiation frame path.
//
// Emits/merges the measured scenarios into BENCH_perf.json.
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "perf_json.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"

namespace {

using namespace radsurf;
using bench::PerfRecord;

Circuit noisy_xxzz_circuit() {
  return DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
}

Circuit noisy_rep_circuit(int d) {
  return DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
}

PerfRecord tableau_shot(const std::string& name, const Circuit& c) {
  TableauSimulator sim(c);
  Rng rng(1);
  BitVec record(c.num_measurements());
  const std::size_t shots = 2048;
  const double rate = bench::measure_rate([&] {
    for (std::size_t s = 0; s < shots; ++s) sim.sample_into(rng, record);
    return shots;
  });
  return {name, rate, {}};
}

PerfRecord frame_batch(const std::string& name, const Circuit& c,
                       std::size_t batch) {
  FrameSimulator sim(c, batch);
  Rng rng(1);
  const double rate = bench::measure_rate([&] {
    BitVec residual(batch);
    sim.run(rng, &residual);
    return batch;
  });
  return {name, rate, {}};
}

PerfRecord frame_radiation_batch(const std::string& name, const Circuit& c,
                                 std::size_t batch) {
  // Radiation-instrumented circuit through the heralded-reset fast path;
  // also reports the residual fraction (shots needing an exact re-run).
  FrameSimulator sim(c, batch);
  Rng rng(1);
  std::size_t residual_shots = 0;
  const double rate = bench::measure_rate([&] {
    BitVec residual(batch);
    sim.run(rng, &residual);
    residual_shots = residual.popcount();
    return batch;
  });
  const double residual_fraction =
      static_cast<double>(residual_shots) / static_cast<double>(batch);
  return {name, rate, {{"residual_fraction", residual_fraction}}};
}

}  // namespace

int main() {
  std::vector<PerfRecord> records;
  std::cout << "perf_simulator (shots/s)\n";

  records.push_back(
      tableau_shot("simulator/tableau/xxzz33", noisy_xxzz_circuit()));
  records.push_back(
      tableau_shot("simulator/tableau/rep5", noisy_rep_circuit(5)));
  records.push_back(
      tableau_shot("simulator/tableau/rep15", noisy_rep_circuit(15)));

  records.push_back(
      frame_batch("simulator/frame/xxzz33/b256", noisy_xxzz_circuit(), 256));
  records.push_back(
      frame_batch("simulator/frame/xxzz33/b1024", noisy_xxzz_circuit(), 1024));
  records.push_back(
      frame_batch("simulator/frame/rep5/b1024", noisy_rep_circuit(5), 1024));

  {
    // Strike of intensity 1.0 at qubit 2 with spatial spread on the rep-5
    // mesh, the paper's Fig. 5 hot path.
    const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
    const Graph arch = make_mesh(5, 2);
    const Circuit base = noisy_rep_circuit(5);
    const RadiationModel radiation;
    const Circuit rad = instrument_reset_noise(
        base, radiation.qubit_probabilities(arch, 2, 1.0, true));
    records.push_back(
        frame_radiation_batch("simulator/frame_radiation/rep5/b1024", rad,
                              1024));
  }

  {
    TableauSimulator sim(noisy_xxzz_circuit());
    const double rate =
        bench::measure_rate([&] { return (void)sim.reference_sample(), 1; });
    records.push_back({"simulator/reference_sample/xxzz33", rate, {}});
  }

  for (const PerfRecord& r : records) bench::print_record(r);
  bench::write_perf_json("BENCH_perf.json", records);
  return 0;
}
