// Performance: stabilizer simulation throughput (the enabler of the
// paper's 400M-injection scale).
#include <benchmark/benchmark.h>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "noise/depolarizing.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"

namespace {

using namespace radsurf;

Circuit noisy_xxzz_circuit() {
  static const Circuit c =
      DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  return c;
}

Circuit noisy_rep_circuit(int d) {
  return DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
}

void BM_TableauShot_Xxzz33(benchmark::State& state) {
  const Circuit c = noisy_xxzz_circuit();
  TableauSimulator sim(c);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(sim.sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TableauShot_Xxzz33);

void BM_TableauShot_Repetition(benchmark::State& state) {
  const Circuit c = noisy_rep_circuit(static_cast<int>(state.range(0)));
  TableauSimulator sim(c);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(sim.sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TableauShot_Repetition)->Arg(5)->Arg(11)->Arg(15);

void BM_FrameBatch_Xxzz33(benchmark::State& state) {
  const Circuit c = noisy_xxzz_circuit();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  FrameSimulator sim(c, batch);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(sim.run(rng));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_FrameBatch_Xxzz33)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReferenceSample(benchmark::State& state) {
  const Circuit c = noisy_xxzz_circuit();
  TableauSimulator sim(c);
  for (auto _ : state) benchmark::DoNotOptimize(sim.reference_sample());
}
BENCHMARK(BM_ReferenceSample);

}  // namespace

BENCHMARK_MAIN();
