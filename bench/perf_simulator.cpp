// Performance: stabilizer simulation throughput.  Merges records into
// BENCH_perf.json.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "perf_simulator"; see specs/perf_simulator.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_perf_main("perf_simulator", argc, argv);
}
