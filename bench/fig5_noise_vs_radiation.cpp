// Reproduces paper Fig. 5: the logical-error landscape over intrinsic
// physical error rate x radiation-fault time evolution.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig5"; see specs/fig5.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig5", argc, argv);
}
