// Reproduces paper Fig. 5: the logical-error landscape over intrinsic
// physical error rate x radiation-fault time evolution, for the
// repetition-(5,1) code on a 5x2 mesh and the XXZZ-(3,3) code on a 5x4
// mesh (root impact on qubit 2, full spatio-temporal fault).
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig5_noise_vs_radiation(opts);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
