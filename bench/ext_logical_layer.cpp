// Extension (paper Sec. VI future work): post-QEC logical-layer fault
// injection.
//
// The physical campaign measures the XXZZ-(3,3) patch's post-QEC logical
// error rate over a radiation event; those rates then drive logical X
// faults on one patch of a 5-patch logical GHZ circuit.  The output is the
// logical-layer corruption probability over the event's time evolution —
// the analysis pipeline the paper proposes as its next step.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "core/logical_layer.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(2000);

    // Physical layer: measure the struck patch's LER over the event.
    const XXZZCode code(3, 3);
    InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
    const auto series = engine.run_radiation_event(2, shots, opts.seed);
    const auto base = engine.run_intrinsic(shots, opts.seed + 1);
    const auto times = engine.radiation().sample_times();

    // Logical layer: 5-patch GHZ, the struck patch's fault rate follows
    // the event; the others stay at the intrinsic-only rate.
    const std::size_t patches = 5;
    const Circuit ghz = logical_ghz_circuit(patches);
    Table table({"t", "struck patch LER", "GHZ corruption", "baseline"});
    Rng rng(opts.seed + 99);

    LogicalFaultModel nominal;
    nominal.x_rate.assign(patches, base.rate());
    const double baseline = logical_corruption_rate(
        instrument_logical_faults(ghz, nominal), shots, rng);

    for (std::size_t i = 0; i < series.size(); ++i) {
      LogicalFaultModel model = nominal;
      model.x_rate[2] = series[i].rate();  // the struck patch
      const double corruption = logical_corruption_rate(
          instrument_logical_faults(ghz, model), shots, rng);
      table.add_row({Table::fmt(times[i], 2), Table::pct(series[i].rate()),
                     Table::pct(corruption), Table::pct(baseline)});
    }
    std::cout << "== Extension — post-QEC logical-layer fault injection ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: struck patch = logical qubit 2 of a 5-patch GHZ; "
                 "rates from the physical XXZZ-(3,3) campaign\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
