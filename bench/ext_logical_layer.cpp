// Extension (paper Sec. VI future work): post-QEC logical-layer fault
// injection driven by the physical campaign rates.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "ext_logical_layer"; see specs/ext_logical_layer.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("ext_logical_layer", argc, argv);
}
