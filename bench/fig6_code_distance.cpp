// Reproduces paper Fig. 6: logical error criticality by code distance
// under a single non-spreading erasure at t = 0.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig6"; see specs/fig6.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig6", argc, argv);
}
