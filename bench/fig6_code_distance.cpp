// Reproduces paper Fig. 6: logical error criticality by code distance
// under a single non-spreading erasure at t = 0, for the bit-flip
// repetition family and the XXZZ family.
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig6_code_distance(opts);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
