// Ablation: number of stabilisation rounds (the paper uses 2).
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_rounds"; see specs/abl_rounds.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_rounds", argc, argv);
}
