// Ablation: number of stabilisation rounds (extension beyond the paper).
//
// The paper's circuits use two stabilisation rounds around the logical
// operation (Figs 1-2).  More rounds give the decoder more syndrome
// history but also more gates for the radiation fault to corrupt; this
// bench measures which effect wins under a strike.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(1200);

    Table table({"code", "rounds", "ops", "intrinsic LER", "strike LER"});
    struct Config {
      const char* label;
      std::unique_ptr<SurfaceCode> code;
      Graph arch;
    };
    std::vector<Config> configs;
    configs.push_back({"repetition-(5,1)",
                       std::make_unique<RepetitionCode>(
                           5, RepetitionFlavor::BIT_FLIP),
                       make_mesh(5, 2)});
    configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                       make_mesh(5, 4)});

    for (auto& cfg : configs) {
      for (std::size_t rounds : {2, 3, 4, 6}) {
        EngineOptions eopts;
        eopts.rounds = rounds;
        InjectionEngine engine(*cfg.code, cfg.arch, eopts);
        const auto intrinsic = engine.run_intrinsic(shots, opts.seed);
        const auto strike =
            engine.run_radiation_at(2, 1.0, true, shots, opts.seed + 1);
        table.add_row({cfg.label, std::to_string(rounds),
                       std::to_string(engine.transpiled().ops_after),
                       Table::pct(intrinsic.rate()),
                       Table::pct(strike.rate())});
      }
    }
    std::cout << "== Ablation — stabilisation round count ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: paper uses 2 rounds (Figs 1-2)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
