// Performance: end-to-end injection-campaign throughput, frame fast path
// vs exact baseline.  Merges records into BENCH_perf.json.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "perf_pipeline"; see specs/perf_pipeline.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_perf_main("perf_pipeline", argc, argv);
}
