// Performance: end-to-end injection campaign throughput (shots/second of
// the full sample -> detectors -> decode -> compare pipeline), contrasting
// the batched frame fast path (SamplingPath::AUTO, the default) against
// the exact per-shot tableau baseline (SamplingPath::EXACT) on identical
// seeds, and reporting the syndrome-cache hit rate plus the residual
// fraction (the share of shots the AUTO path had to hand to an exact
// engine — the cost driver behind speedup_vs_exact).
//
// Emits/merges the measured scenarios into BENCH_perf.json (see
// perf_json.hpp) so successive PRs accumulate a perf trajectory.
#include <iostream>
#include <memory>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"
#include "perf_json.hpp"

namespace {

using namespace radsurf;
using bench::PerfRecord;

EngineOptions path_options(SamplingPath path) {
  EngineOptions opts;
  opts.sampling_path = path;
  return opts;
}

struct CampaignResult {
  double shots_per_second = 0.0;
  double cache_hit_rate = 0.0;
  double residual_fraction = 0.0;
};

template <typename RunFn>
CampaignResult measure_campaign(const SurfaceCode& code, const Graph& arch,
                                SamplingPath path, std::size_t shots,
                                const RunFn& run, bool smoke) {
  InjectionEngine engine(code, arch, path_options(path));
  CampaignResult out;
  std::uint64_t seed = 1;
  out.shots_per_second = bench::measure_rate_mode(
      [&] {
        run(engine, shots, seed++);
        return shots;
      },
      smoke);
  out.cache_hit_rate = engine.decode_cache_stats().hit_rate();
  out.residual_fraction = engine.residual_fraction();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  std::vector<PerfRecord> records;
  std::cout << "perf_pipeline (campaign shots/s)\n";

  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const XXZZCode xxzz33(3, 3);
  const Graph mesh52 = make_mesh(5, 2);
  const Graph mesh54 = make_mesh(5, 4);

  // --- intrinsic noise only (pure-Pauli frame path) ------------------------
  {
    const auto run = [](const InjectionEngine& e, std::size_t shots,
                        std::uint64_t seed) {
      return e.run_intrinsic(shots, seed);
    };
    const auto frame =
        measure_campaign(rep5, mesh52, SamplingPath::AUTO,
                         bench::smoke_shots(smoke, 4096), run, smoke);
    records.push_back({"pipeline/intrinsic/rep5",
                       frame.shots_per_second,
                       {{"cache_hit_rate", frame.cache_hit_rate},
                        {"residual_fraction", frame.residual_fraction}}});
    bench::print_record(records.back());
  }

  // --- radiation campaigns: frame fast path vs exact baseline --------------
  const auto radiation_scenario = [&](const std::string& name,
                                      const SurfaceCode& code,
                                      const Graph& arch, std::size_t shots) {
    const auto run = [](const InjectionEngine& e, std::size_t s,
                        std::uint64_t seed) {
      return e.run_radiation_at(2, 1.0, true, s, seed);
    };
    const auto frame =
        measure_campaign(code, arch, SamplingPath::AUTO, shots, run, smoke);
    const auto exact =
        measure_campaign(code, arch, SamplingPath::EXACT, shots, run, smoke);
    const double speedup = exact.shots_per_second > 0
                               ? frame.shots_per_second /
                                     exact.shots_per_second
                               : 0.0;
    records.push_back({name + "/frame",
                       frame.shots_per_second,
                       {{"cache_hit_rate", frame.cache_hit_rate},
                        {"residual_fraction", frame.residual_fraction},
                        {"speedup_vs_exact", speedup}}});
    records.push_back({name + "/exact",
                       exact.shots_per_second,
                       {{"cache_hit_rate", exact.cache_hit_rate},
                        {"residual_fraction", exact.residual_fraction}}});
    bench::print_record(records[records.size() - 2]);
    bench::print_record(records[records.size() - 1]);
  };
  radiation_scenario("pipeline/radiation/rep5", rep5, mesh52,
                     bench::smoke_shots(smoke, 4096));
  radiation_scenario("pipeline/radiation/xxzz33", xxzz33, mesh54,
                     bench::smoke_shots(smoke, 4096));

  // --- shared-instant erasure (Figs 6-7 workload) --------------------------
  {
    const auto run = [](const InjectionEngine& e, std::size_t shots,
                        std::uint64_t seed) {
      return e.run_erasure({e.active_qubits()[0], e.active_qubits()[1]},
                           shots, seed);
    };
    const std::size_t shots = bench::smoke_shots(smoke, 4096);
    const auto frame =
        measure_campaign(rep5, mesh52, SamplingPath::AUTO, shots, run, smoke);
    const auto exact =
        measure_campaign(rep5, mesh52, SamplingPath::EXACT, shots, run,
                         smoke);
    const double speedup = exact.shots_per_second > 0
                               ? frame.shots_per_second /
                                     exact.shots_per_second
                               : 0.0;
    records.push_back({"pipeline/erasure/rep5/frame",
                       frame.shots_per_second,
                       {{"cache_hit_rate", frame.cache_hit_rate},
                        {"residual_fraction", frame.residual_fraction},
                        {"speedup_vs_exact", speedup}}});
    records.push_back({"pipeline/erasure/rep5/exact",
                       exact.shots_per_second,
                       {{"cache_hit_rate", exact.cache_hit_rate},
                        {"residual_fraction", exact.residual_fraction}}});
    bench::print_record(records[records.size() - 2]);
    bench::print_record(records[records.size() - 1]);
  }

  // --- static pipeline construction ---------------------------------------
  {
    const double rate = bench::measure_rate_mode(
        [&] {
          InjectionEngine engine(xxzz33, mesh54, EngineOptions{});
          return std::size_t{1};
        },
        smoke);
    records.push_back({"pipeline/engine_construction/xxzz33", rate, {}});
    bench::print_record(records.back());
  }

  bench::write_perf_json("BENCH_perf.json", records);
  return 0;
}
