// Performance: end-to-end injection campaign throughput (shots/second of
// the full sample -> detectors -> decode -> compare pipeline).
#include <benchmark/benchmark.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"

namespace {

using namespace radsurf;

void BM_CampaignIntrinsic_Rep5(benchmark::State& state) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), EngineOptions{});
  std::uint64_t seed = 1;
  const std::size_t shots = 256;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.run_intrinsic(shots, seed++));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * shots));
}
BENCHMARK(BM_CampaignIntrinsic_Rep5);

void BM_CampaignStrike_Xxzz33(benchmark::State& state) {
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  std::uint64_t seed = 1;
  const std::size_t shots = 256;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        engine.run_radiation_at(2, 1.0, true, shots, seed++));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * shots));
}
BENCHMARK(BM_CampaignStrike_Xxzz33);

void BM_EngineConstruction(benchmark::State& state) {
  const XXZZCode code(3, 3);
  const Graph arch = make_mesh(5, 4);
  for (auto _ : state) {
    InjectionEngine engine(code, arch, EngineOptions{});
    benchmark::DoNotOptimize(engine);
  }
}
BENCHMARK(BM_EngineConstruction);

void BM_EngineConstruction_Brooklyn(benchmark::State& state) {
  const RepetitionCode code(11, RepetitionFlavor::BIT_FLIP);
  const Graph arch = make_brooklyn();
  for (auto _ : state) {
    InjectionEngine engine(code, arch, EngineOptions{});
    benchmark::DoNotOptimize(engine);
  }
}
BENCHMARK(BM_EngineConstruction_Brooklyn);

}  // namespace

BENCHMARK_MAIN();
