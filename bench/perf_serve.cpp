// Performance: streaming decode service — client-measured p50/p99
// window-commit latency and shots/s at several concurrency levels.
// Merges records into BENCH_perf.json.
// Compatibility shim: routes through the scenario registry (scenario
// "perf_serve"; see specs/perf_serve.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_perf_main("perf_serve", argc, argv);
}
