// Performance: decoding throughput vs defect density.
#include <benchmark/benchmark.h>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/greedy.hpp"
#include "decoder/mwpm.hpp"
#include "decoder/union_find.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"

namespace {

using namespace radsurf;

MatchingGraph xxzz_graph() {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

MatchingGraph rep_graph(int d) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  return out;
}

void BM_MwpmConstruction(benchmark::State& state) {
  const auto g = rep_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MwpmDecoder dec(g);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_MwpmConstruction)->Arg(5)->Arg(15);

void BM_MwpmDecode_DefectSweep(benchmark::State& state) {
  const auto g = rep_graph(15);
  MwpmDecoder dec(g);
  Rng rng(1);
  const auto defects =
      random_defects(g.num_detectors(),
                     static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) benchmark::DoNotOptimize(dec.decode(defects));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MwpmDecode_DefectSweep)->Arg(2)->Arg(6)->Arg(12)->Arg(20);

void BM_DecoderKinds_Xxzz(benchmark::State& state) {
  const auto g = xxzz_graph();
  const auto kind = static_cast<DecoderKind>(state.range(0));
  const auto dec = make_decoder(kind, g);
  Rng rng(2);
  const auto defects = random_defects(g.num_detectors(), 6, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dec->decode(defects));
  state.SetLabel(decoder_kind_name(kind));
}
BENCHMARK(BM_DecoderKinds_Xxzz)
    ->Arg(static_cast<int>(DecoderKind::MWPM))
    ->Arg(static_cast<int>(DecoderKind::UNION_FIND))
    ->Arg(static_cast<int>(DecoderKind::GREEDY));

void BM_DemExtraction(benchmark::State& state) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  for (auto _ : state)
    benchmark::DoNotOptimize(DetectorErrorModel::from_circuit(noisy));
}
BENCHMARK(BM_DemExtraction);

}  // namespace

BENCHMARK_MAIN();
