// Performance: decoding throughput vs defect density, decoder kinds, and
// the syndrome-memoization cache on a campaign-realistic repeat-heavy
// syndrome stream.
//
// Emits/merges the measured scenarios into BENCH_perf.json.
#include <algorithm>
#include <iostream>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/mwpm.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"
#include "perf_json.hpp"

namespace {

using namespace radsurf;
using bench::PerfRecord;

MatchingGraph xxzz_graph() {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

MatchingGraph rep_graph(int d) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  return out;
}

PerfRecord decode_sweep(const std::string& name, Decoder& dec,
                        std::size_t num_detectors, std::size_t k) {
  Rng rng(1);
  const auto defects = random_defects(num_detectors, k, rng);
  const std::size_t reps = 256;
  const double rate = bench::measure_rate([&] {
    for (std::size_t i = 0; i < reps; ++i) dec.decode(defects);
    return reps;
  });
  return {name, rate, {}};
}

}  // namespace

int main() {
  std::vector<PerfRecord> records;
  std::cout << "perf_decoder (decodes/s)\n";

  {
    const auto g = rep_graph(15);
    MwpmDecoder dec(g);
    for (std::size_t k : {2u, 6u, 12u, 20u})
      records.push_back(decode_sweep(
          "decoder/mwpm/rep15/k" + std::to_string(k), dec,
          g.num_detectors(), k));
  }

  {
    const auto g = xxzz_graph();
    for (auto kind :
         {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
      const auto dec = make_decoder(kind, g);
      records.push_back(decode_sweep(
          "decoder/" + decoder_kind_name(kind) + "/xxzz33/k6", *dec,
          g.num_detectors(), 6));
    }
  }

  {
    // Campaign-realistic memoization: radiation shots draw from a small
    // hot set of syndromes.  Stream 4096 decodes over a pool of 32
    // distinct defect sets and report the steady-state hit rate.
    const auto g = rep_graph(15);
    MwpmDecoder inner(g);
    CachingDecoder cached(inner);
    Rng rng(7);
    std::vector<std::vector<std::uint32_t>> pool;
    for (int i = 0; i < 32; ++i)
      pool.push_back(random_defects(g.num_detectors(), 8, rng));
    const std::size_t stream = 4096;
    const double rate = bench::measure_rate([&] {
      for (std::size_t i = 0; i < stream; ++i)
        cached.decode(pool[rng.below(pool.size())]);
      return stream;
    });
    records.push_back({"decoder/mwpm_cached/rep15/pool32",
                       rate,
                       {{"cache_hit_rate", cached.stats().hit_rate()}}});
  }

  {
    const double rate = bench::measure_rate([&] {
      const auto g = rep_graph(15);
      MwpmDecoder dec(g);
      return std::size_t{1};
    });
    records.push_back({"decoder/mwpm_construction/rep15", rate, {}});
  }

  for (const PerfRecord& r : records) bench::print_record(r);
  bench::write_perf_json("BENCH_perf.json", records);
  return 0;
}
