// Performance: decoding throughput vs defect density, decoder kinds, the
// sparse on-demand MWPM backend (lazy construction, cold-start decode),
// and the syndrome-memoization cache on campaign-realistic repeat-heavy
// syndrome streams — including the per-cluster memoization gain over
// whole-syndrome caching, which is asserted, not just reported.
//
// Emits/merges the measured scenarios into BENCH_perf.json.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/mwpm.hpp"
#include "detector/error_model.hpp"
#include "noise/depolarizing.hpp"
#include "perf_json.hpp"

namespace {

using namespace radsurf;
using bench::PerfRecord;

MatchingGraph xxzz_graph() {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

MatchingGraph rep_graph(int d) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Type-erasing wrapper: hides the MwpmDecoder from CachingDecoder's
// dynamic_cast, forcing whole-syndrome memoization (the baseline the
// cluster cache is measured against).
struct OpaqueDecoder final : Decoder {
  explicit OpaqueDecoder(Decoder& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name(); }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override {
    return inner_.decode(defects);
  }
  Decoder& inner_;
};

PerfRecord decode_sweep(const std::string& name, Decoder& dec,
                        std::size_t num_detectors, std::size_t k,
                        bool smoke) {
  Rng rng(1);
  const auto defects = random_defects(num_detectors, k, rng);
  const std::size_t reps = smoke ? 16 : 256;
  const double rate = bench::measure_rate_mode(
      [&] {
        for (std::size_t i = 0; i < reps; ++i) dec.decode(defects);
        return reps;
      },
      smoke);
  return {name, rate, {}};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  std::vector<PerfRecord> records;
  std::cout << "perf_decoder (decodes/s)\n";

  {
    const auto g = rep_graph(15);
    MwpmDecoder dec(g);
    for (std::size_t k : {2u, 6u, 12u, 20u})
      records.push_back(decode_sweep(
          "decoder/mwpm/rep15/k" + std::to_string(k), dec,
          g.num_detectors(), k, smoke));
  }

  {
    const auto g = xxzz_graph();
    for (auto kind :
         {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
      const auto dec = make_decoder(kind, g);
      records.push_back(decode_sweep(
          "decoder/" + decoder_kind_name(kind) + "/xxzz33/k6", *dec,
          g.num_detectors(), 6, smoke));
    }
  }

  {
    // Campaign-realistic memoization: radiation shots draw from a small
    // hot set of syndromes.  Stream 4096 decodes over a pool of 32
    // distinct defect sets and report the steady-state hit rate.
    const auto g = rep_graph(15);
    MwpmDecoder inner(g);
    CachingDecoder cached(inner);
    Rng rng(7);
    std::vector<std::vector<std::uint32_t>> pool;
    for (int i = 0; i < 32; ++i)
      pool.push_back(random_defects(g.num_detectors(), 8, rng));
    const std::size_t stream = smoke ? 256 : 4096;
    const double rate = bench::measure_rate_mode(
        [&] {
          for (std::size_t i = 0; i < stream; ++i)
            cached.decode(pool[rng.below(pool.size())]);
          return stream;
        },
        smoke);
    records.push_back({"decoder/mwpm_cached/rep15/pool32",
                       rate,
                       {{"cache_hit_rate", cached.stats().hit_rate()}}});
  }

  {
    // Per-cluster vs whole-syndrome memoization on a locality-structured
    // stream: each syndrome is the union of two far-apart defect pairs
    // (disjoint internal edges the union-find prefilter actually splits),
    // so the *whole-syndrome* vocabulary is the large pair-product space
    // while the *cluster* vocabulary is just the small set of edges.
    // Every syndrome is distinct by construction; the cold-pass hit-rate
    // gain of cluster keys is part of the bench contract.
    const auto g = rep_graph(15);
    const auto nd = static_cast<std::uint32_t>(g.num_detectors());
    MwpmDecoder prefilter(g);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> internal;
    for (const MatchingEdge& e : g.edges())
      if (e.a < nd && e.b < nd && e.a != e.b) internal.push_back({e.a, e.b});
    std::vector<std::vector<std::uint32_t>> stream;
    for (std::size_t x = 0; x < internal.size() && stream.size() < 2048;
         ++x) {
      for (std::size_t y = x + 1;
           y < internal.size() && stream.size() < 2048; ++y) {
        const auto [a1, b1] = internal[x];
        const auto [a2, b2] = internal[y];
        if (a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2) continue;
        std::vector<std::uint32_t> defects{a1, b1, a2, b2};
        std::sort(defects.begin(), defects.end());
        if (prefilter.defect_clusters(defects).size() < 2) continue;
        stream.push_back(defects);
      }
    }
    MwpmDecoder inner_cluster(g);
    CachingDecoder clustered(inner_cluster);
    MwpmDecoder inner_whole(g);
    OpaqueDecoder opaque(inner_whole);
    CachingDecoder whole(opaque);
    const double cluster_rate = bench::measure_rate_mode(
        [&] {
          for (const auto& defects : stream) clustered.decode(defects);
          return stream.size();
        },
        smoke);
    const double whole_rate = bench::measure_rate_mode(
        [&] {
          for (const auto& defects : stream) whole.decode(defects);
          return stream.size();
        },
        smoke);
    // Hit rates come from one *cold* pass each: measure_rate repeats the
    // stream, and by the second pass every whole-syndrome key is cached
    // too, hiding the structural difference the assertion pins down.
    MwpmDecoder cold_cluster_inner(g);
    CachingDecoder cold_cluster(cold_cluster_inner);
    MwpmDecoder cold_whole_inner(g);
    OpaqueDecoder cold_opaque(cold_whole_inner);
    CachingDecoder cold_whole(cold_opaque);
    for (const auto& defects : stream) {
      cold_cluster.decode(defects);
      cold_whole.decode(defects);
    }
    const double cluster_hits = cold_cluster.stats().hit_rate();
    const double whole_hits = cold_whole.stats().hit_rate();
    records.push_back({"decoder/mwpm_cached_cluster/rep15/distinct",
                       cluster_rate,
                       {{"cache_hit_rate", cluster_hits}}});
    records.push_back({"decoder/mwpm_cached_whole/rep15/distinct",
                       whole_rate,
                       {{"cache_hit_rate", whole_hits}}});
    if (cluster_hits <= whole_hits) {
      std::cerr << "FAIL: cluster-cache hit rate " << cluster_hits
                << " did not beat whole-syndrome hit rate " << whole_hits
                << "\n";
      return EXIT_FAILURE;
    }
  }

  {
    // Decoder construction proper (graph prebuilt): sparse is O(E), dense
    // pays the eager all-pairs Dijkstra precompute.
    const auto g = rep_graph(15);
    const double sparse_rate = bench::measure_rate_mode(
        [&] {
          MwpmDecoder dec(g);
          return std::size_t{1};
        },
        smoke);
    records.push_back({"decoder/mwpm_construction/rep15", sparse_rate, {}});
    const double dense_rate = bench::measure_rate_mode(
        [&] {
          MwpmDecoder dec(g, MwpmOptions{false, /*lazy=*/false, true});
          return std::size_t{1};
        },
        smoke);
    records.push_back(
        {"decoder/mwpm_construction/rep15/dense", dense_rate, {}});
    // Cold-start decode: construction plus one decode, the sliding-window
    // and campaign-setup pattern (lazy rows only grow around the defects).
    Rng rng(3);
    const auto defects = random_defects(g.num_detectors(), 6, rng);
    const double cold_rate = bench::measure_rate_mode(
        [&] {
          MwpmDecoder dec(g);
          (void)dec.decode(defects);
          return std::size_t{1};
        },
        smoke);
    records.push_back({"decoder/mwpm_cold_decode/rep15/k6", cold_rate, {}});
  }

  for (const PerfRecord& r : records) bench::print_record(r);
  bench::write_perf_json("BENCH_perf.json", records);
  return 0;
}
