// Performance: decoding throughput and syndrome-cache behaviour (the
// cluster-cache gain is asserted).  Merges records into BENCH_perf.json.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "perf_decoder"; see specs/perf_decoder.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_perf_main("perf_decoder", argc, argv);
}
