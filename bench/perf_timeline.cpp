// Performance: long-horizon timeline campaigns under sliding-window
// decoding vs the whole-history decoder.  Merges records into
// BENCH_perf.json.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "perf_timeline"; see specs/perf_timeline.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_perf_main("perf_timeline", argc, argv);
}
