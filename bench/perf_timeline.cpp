// Performance: long-horizon timeline campaigns (the multi-event N-round
// memory workload) under sliding-window decoding, against the whole-history
// decoder on the same event realization.
//
// The headline scenario is the acceptance workload: a 200-round
// repetition-(5,1) timeline whose decoder state stays O(window) — the
// window subgraphs are deduplicated by shape, so a 200-round history builds
// the same handful of MWPM tables as a 20-round one — versus the
// whole-history decoder whose distance tables grow with rounds^2.
// Emits/merges into BENCH_perf.json (see perf_json.hpp).
#include <iostream>
#include <vector>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "decoder/sliding_window.hpp"
#include "inject/campaign.hpp"
#include "perf_json.hpp"

namespace {

using namespace radsurf;
using bench::PerfRecord;

constexpr std::size_t kRounds = 200;

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t kShots = bench::smoke_shots(smoke, 512, 16);
  std::vector<PerfRecord> records;
  std::cout << "perf_timeline (" << kRounds << "-round rep-(5,1) campaign "
            << "shots/s)\n";

  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const Graph mesh52 = make_mesh(5, 2);

  EngineOptions opts;
  opts.rounds = kRounds;
  opts.whole_history_decoder = false;  // decoder memory stays O(window)
  const InjectionEngine engine(rep5, mesh52, opts);

  TimelineOptions topts;
  topts.events_per_round = 0.02;
  topts.duration_rounds = 10;
  const RadiationTimeline timeline(engine.radiation(), topts);
  Rng event_rng(20260729);
  const auto events =
      timeline.sample(kRounds, engine.active_qubits(), event_rng);
  std::cout << "  events in realization: " << events.size() << "\n";

  // --- sliding windows (W = 10, C = 5) -------------------------------------
  const SlidingWindowOptions window{10, 5};
  const SlidingWindowDecoder probe(engine.matching_graph(),
                                   engine.detector_rounds(), kRounds,
                                   window);
  {
    std::uint64_t seed = 1;
    const double rate = bench::measure_rate_mode(
        [&] {
          engine.run_timeline(timeline, events, kShots, seed++, window);
          return kShots;
        },
        smoke);
    records.push_back(
        {"timeline/rep5_200r/window",
         rate,
         {{"rounds", static_cast<double>(kRounds)},
          {"window", static_cast<double>(window.window)},
          {"num_windows", static_cast<double>(probe.num_windows())},
          {"window_decoders", static_cast<double>(probe.num_decoders())},
          {"max_window_detectors",
           static_cast<double>(probe.max_window_detectors())},
          {"cache_hit_rate", engine.decode_cache_stats().hit_rate()}}});
    bench::print_record(records.back());
  }

  // --- whole-history baseline (window >= rounds: one full-size MWPM) -------
  {
    const SlidingWindowOptions whole{kRounds, 0};
    std::uint64_t seed = 1;
    const double rate = bench::measure_rate_mode(
        [&] {
          engine.run_timeline(timeline, events, kShots, seed++, whole);
          return kShots;
        },
        smoke);
    records.push_back(
        {"timeline/rep5_200r/whole_history",
         rate,
         {{"rounds", static_cast<double>(kRounds)},
          {"history_detectors",
           static_cast<double>(engine.matching_graph().num_detectors())}}});
    bench::print_record(records.back());
  }

  bench::write_perf_json("BENCH_perf.json", records);
  return 0;
}
