// Reproduces paper Fig. 7: logical error from k simultaneous uncorrelated
// erasures (connected subgraphs, median) compared against one spatially
// spreading radiation fault (the red line), for repetition-(15,1) and
// XXZZ-(3,3).
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig7_fault_spread(opts);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
