// Reproduces paper Fig. 7: k simultaneous erasures (connected subgraphs)
// vs one spreading radiation fault.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig7"; see specs/fig7.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig7", argc, argv);
}
