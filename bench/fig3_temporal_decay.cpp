// Reproduces paper Fig. 3: the temporal decay function T(t) = exp(-10 t)
// and its ns = 10 step approximation T^(t).
#include <cstdio>
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig3_temporal_decay();
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
