// Reproduces paper Fig. 3: the temporal decay function T(t) = exp(-10 t)
// and its ns = 10 step approximation.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig3"; see specs/fig3.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig3", argc, argv);
}
