// Extension ablation (paper RQ3): how much does a radiation-aware decoder
// recover?
//
// The paper's decoder is tuned for intrinsic noise only; its RQ3 asks for
// design guidance for future radiation-capable QEC.  Here the matching
// graph is rebuilt per strike with the reset field included (X/Z
// approximation of the reset channel), modelling a decoder co-designed
// with an on-chip cosmic-ray detector that reports the impact point and
// intensity.  The gap between the standard and aware rows is the headroom
// software-only mitigation has.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(1500);

    Table table({"code", "root prob T(t)", "standard LER", "aware LER",
                 "absolute gain"});
    struct Config {
      const char* label;
      std::unique_ptr<SurfaceCode> code;
      Graph arch;
    };
    std::vector<Config> configs;
    configs.push_back({"repetition-(5,1)",
                       std::make_unique<RepetitionCode>(
                           5, RepetitionFlavor::BIT_FLIP),
                       make_mesh(5, 2)});
    configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                       make_mesh(5, 4)});

    for (auto& cfg : configs) {
      InjectionEngine engine(*cfg.code, cfg.arch, EngineOptions{});
      for (double t : {0.0, 0.1, 0.2, 0.4}) {
        const double prob = engine.radiation().temporal(t);
        const auto standard =
            engine.run_radiation_at(2, prob, true, shots, opts.seed);
        const auto aware =
            engine.run_radiation_at_aware(2, prob, true, shots, opts.seed);
        table.add_row({cfg.label, Table::fmt(prob, 4),
                       Table::pct(standard.rate()), Table::pct(aware.rate()),
                       Table::pct(standard.rate() - aware.rate())});
      }
    }
    std::cout << "== Extension — radiation-aware MWPM (RQ3 headroom) ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: the aware decoder knows the strike's reset field; "
                 "the paper's decoder (standard) knows only intrinsic "
                 "noise\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
