// Extension ablation (paper RQ3): headroom of a radiation-aware decoder.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_aware_decoder"; see specs/abl_aware_decoder.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_aware_decoder", argc, argv);
}
