// Ablation: readout (SPAM) error sensitivity.
//
// The paper's intrinsic model (Eq. 4) attaches noise to gates only; real
// devices also misread measurements (Sec. II-B).  This bench sweeps a
// readout X-error rate and reports how the intrinsic baseline and the
// strike-time LER respond — checking that the paper's conclusions are not
// an artefact of noiseless readout.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(1500);

    Table table({"code", "meas error", "intrinsic LER", "strike LER"});
    struct Config {
      const char* label;
      std::unique_ptr<SurfaceCode> code;
      Graph arch;
    };
    std::vector<Config> configs;
    configs.push_back({"repetition-(5,1)",
                       std::make_unique<RepetitionCode>(
                           5, RepetitionFlavor::BIT_FLIP),
                       make_mesh(5, 2)});
    configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                       make_mesh(5, 4)});

    for (auto& cfg : configs) {
      for (double pm : {0.0, 1e-3, 1e-2, 5e-2}) {
        EngineOptions eopts;
        eopts.measurement_error_rate = pm;
        InjectionEngine engine(*cfg.code, cfg.arch, eopts);
        const auto intrinsic = engine.run_intrinsic(shots, opts.seed);
        const auto strike =
            engine.run_radiation_at(2, 1.0, true, shots, opts.seed + 1);
        table.add_row({cfg.label, Table::fmt(pm, 4),
                       Table::pct(intrinsic.rate()),
                       Table::pct(strike.rate())});
      }
    }
    std::cout << "== Ablation — readout (SPAM) error sensitivity ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: paper Eq. 4 attaches noise to gates only (pm = 0 "
                 "row)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
