// Ablation: readout (SPAM) error sensitivity.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_meas_error"; see specs/abl_meas_error.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_meas_error", argc, argv);
}
