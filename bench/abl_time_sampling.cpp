// Ablation: temporal sample count ns (the paper picks ns = 10).
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_time_sampling"; see specs/abl_time_sampling.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_time_sampling", argc, argv);
}
