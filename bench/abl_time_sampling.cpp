// Ablation: temporal sample count ns (DESIGN.md Sec. 8).
//
// The paper picks ns = 10 equidistant samples of T(t) as the
// accuracy/cost sweet spot (Sec. III-B).  This bench sweeps ns and reports
// the event-averaged logical error rate: if coarser step functions move
// the estimate materially, the choice matters; if not, ns = 10 is safely
// conservative.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "inject/results.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(1200);

    Table table({"ns", "event-mean LER", "strike LER", "samples"});
    const XXZZCode code(3, 3);
    for (std::size_t ns : {2, 5, 10, 20, 40}) {
      EngineOptions eopts;
      eopts.radiation.ns = ns;
      InjectionEngine engine(code, make_mesh(5, 4), eopts);
      const auto series = engine.run_radiation_event(
          2, std::max<std::size_t>(shots / ns, 50), opts.seed);
      table.add_row({std::to_string(ns), Table::pct(mean_rate(series)),
                     Table::pct(series.front().rate()),
                     std::to_string(series.size())});
    }
    std::cout << "== Ablation — temporal step-function resolution ns ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: paper selects ns = 10 (Sec. III-B, Fig. 3)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
