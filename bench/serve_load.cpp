// Load generator for a running `radsurf serve` instance.
//
// Reads the SAME spec file as the server (scenario "serve") so both sides
// agree bit-for-bit on the experiment, connects over TCP or a unix-domain
// socket, streams shots with pipelining, and pins every RESULT against an
// offline sliding-window decode computed locally.  Exits nonzero on any
// mismatch, protocol error, or if no shots completed — the CI serve-smoke
// job is built on this contract.
//
// usage:
//   serve_load <spec.json> (--port P | --unix PATH)
//              [--streams N] [--shots M] [--seed S]
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>

#include "cli/spec.hpp"
#include "serve/config.hpp"
#include "serve/loadgen.hpp"

namespace {

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects an integer, got \"%s\"\n", flag,
                 text);
    std::exit(1);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radsurf;
  try {
    std::string spec_path;
    std::optional<std::uint16_t> port;
    std::optional<std::string> unix_path;
    std::optional<std::size_t> streams;
    std::optional<std::size_t> shots;
    std::optional<std::uint64_t> seed;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* what) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s needs a value\n", what);
          std::exit(1);
        }
        return argv[++i];
      };
      if (arg == "--port") {
        port = static_cast<std::uint16_t>(
            parse_u64("--port", next("--port")));
      } else if (arg == "--unix") {
        unix_path = next("--unix");
      } else if (arg == "--streams") {
        streams = static_cast<std::size_t>(
            parse_u64("--streams", next("--streams")));
      } else if (arg == "--shots") {
        shots = static_cast<std::size_t>(
            parse_u64("--shots", next("--shots")));
      } else if (arg == "--seed") {
        seed = parse_u64("--seed", next("--seed"));
      } else if (spec_path.empty() && (arg.empty() || arg[0] != '-')) {
        spec_path = arg;
      } else {
        std::fprintf(stderr, "error: unknown argument %s\n", arg.c_str());
        return 1;
      }
    }
    if (spec_path.empty() || (!port && !unix_path)) {
      std::fprintf(stderr,
                   "usage: serve_load <spec.json> (--port P | --unix PATH) "
                   "[--streams N] [--shots M] [--seed S]\n");
      return 1;
    }

    const ScenarioSpec spec = ScenarioSpec::from_file(spec_path);
    SpecReader params(spec.params, "$.params");
    serve::ServeConfig cfg = serve::ServeConfig::from_params(params);
    params.finish();
    if (streams) cfg.streams = *streams;
    if (shots) cfg.shots_per_stream = *shots;
    const std::uint64_t base_seed = seed ? *seed : spec.seed;

    const std::unique_ptr<InjectionEngine> engine = cfg.build_engine();
    const RadiationTimeline timeline = cfg.build_timeline(*engine);
    serve::LoadGenOptions lopts = cfg.loadgen_options(base_seed);
    lopts.events = cfg.build_events(*engine, timeline, base_seed + 1);
    if (unix_path)
      lopts.unix_path = *unix_path;
    else
      lopts.port = *port;

    const serve::LoadGenReport rep = run_load(*engine, timeline, lopts);
    std::printf(
        "serve_load: streams=%zu shots_sent=%zu results=%zu commits=%zu "
        "sheds=%zu errors=%zu mismatches=%zu\n",
        rep.streams, rep.shots_sent, rep.results, rep.commits, rep.sheds,
        rep.errors, rep.mismatches);
    std::printf(
        "serve_load: elapsed=%.3fs shots/s=%.1f commit_p50=%.3fms "
        "commit_p99=%.3fms\n",
        rep.elapsed_seconds, rep.shots_per_second, rep.p50_ms, rep.p99_ms);
    if (!rep.clean() || rep.results == 0) {
      std::fprintf(stderr, "serve_load: FAILED (errors=%zu mismatches=%zu "
                           "results=%zu)\n",
                   rep.errors, rep.mismatches, rep.results);
      return 1;
    }
    std::printf("serve_load: OK (all results parity-pinned against offline "
                "decode)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
