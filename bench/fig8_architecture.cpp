// Reproduces paper Fig. 8: per-root-qubit median logical error across
// architectures; includes the Obs. VII DAG analysis.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig8"; see specs/fig8.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig8", argc, argv);
}
