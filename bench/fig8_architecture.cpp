// Reproduces paper Fig. 8: per-root-qubit median logical error over the
// full spatio-temporal fault evolution, across hardware architectures
// (repetition-(11,1) and XXZZ-(3,3)), with the Obs. VII DAG analysis.
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig8_architecture(opts);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
