// Shared machinery of the perf_* benches: wall-clock throughput measurement
// and the BENCH_perf.json perf-trajectory file.
//
// BENCH_perf.json is a JSON object whose "records" array holds one object
// per scenario, one per line:
//   {"scenario": "pipeline/radiation/rep5", "shots_per_second": 1.2e6,
//    "cache_hit_rate": 0.97, "speedup_vs_exact": 9.3}
// The three perf benches merge into the same file (records are keyed by
// scenario name: re-running a bench replaces its scenarios and preserves
// the others), so successive PRs accumulate a comparable perf history.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace radsurf::bench {

/// True when the bench was launched with --smoke: CI runs a tiny shot
/// budget to validate that the bench executes and emits well-formed JSON,
/// with no timing assertions (timings from shared runners are noise).
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") return true;
  return false;
}

/// Shot budget helper: full budget normally, a fixed tiny budget in smoke
/// mode.
inline std::size_t smoke_shots(bool smoke, std::size_t full,
                               std::size_t tiny = 64) {
  return smoke ? tiny : full;
}


struct PerfRecord {
  std::string scenario;
  double shots_per_second = 0.0;
  // Optional scenario-specific metrics (cache_hit_rate, speedup_vs_exact,
  // residual_fraction, ...).
  std::vector<std::pair<std::string, double>> extra;
};

/// Best-of-reps throughput: `fn` performs one repetition and returns the
/// number of work items (shots, decodes, ...) it processed.  One warm-up
/// repetition, then repetitions until `min_seconds` of measured time or
/// `max_reps`, keeping the fastest rate.
inline double measure_rate(const std::function<std::size_t()>& fn,
                           double min_seconds = 0.25, int max_reps = 12) {
  using clock = std::chrono::steady_clock;
  (void)fn();  // warm-up (first-touch allocations, cache population)
  double best = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < max_reps && (rep < 2 || total < min_seconds);
       ++rep) {
    const auto t0 = clock::now();
    const std::size_t items = fn();
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count();
    total += dt;
    if (dt > 0.0 && static_cast<double>(items) / dt > best)
      best = static_cast<double>(items) / dt;
  }
  return best;
}

/// measure_rate with the shared smoke-mode budget policy: two quick reps
/// in smoke mode (the CI job only validates that the bench runs), the
/// full best-of measurement otherwise.
inline double measure_rate_mode(const std::function<std::size_t()>& fn,
                                bool smoke) {
  return measure_rate(fn, smoke ? 0.0 : 0.25, smoke ? 2 : 12);
}

inline std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

inline std::string record_line(const PerfRecord& r) {
  std::ostringstream os;
  os << "    {\"scenario\": \"" << r.scenario << "\", \"shots_per_second\": "
     << json_number(r.shots_per_second);
  for (const auto& [key, value] : r.extra)
    os << ", \"" << key << "\": " << json_number(value);
  os << "}";
  return os.str();
}

/// Merge `records` into the JSON file at `path` (see file comment).
inline void write_perf_json(const std::string& path,
                            const std::vector<PerfRecord>& records) {
  std::set<std::string> replaced;
  for (const PerfRecord& r : records) replaced.insert(r.scenario);

  // Keep existing record lines for scenarios this run did not measure.
  std::vector<std::string> kept;
  std::ifstream in(path);
  std::string line;
  const std::string key = "{\"scenario\": \"";
  while (std::getline(in, line)) {
    const auto at = line.find(key);
    if (at == std::string::npos) continue;
    const auto name_begin = at + key.size();
    const auto name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    if (!replaced.count(line.substr(name_begin, name_end - name_begin)))
      kept.push_back(line.substr(0, line.find_last_not_of(", \t") + 1));
  }
  in.close();

  std::vector<std::string> lines = std::move(kept);
  for (const PerfRecord& r : records) lines.push_back(record_line(r));

  std::ofstream out(path);
  out << "{\n  \"bench\": \"radsurf-perf\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  out << "  ]\n}\n";
  std::cout << "wrote " << lines.size() << " records to " << path << "\n";
}

inline void print_record(const PerfRecord& r) {
  std::cout << "  " << r.scenario << ": "
            << json_number(r.shots_per_second) << " items/s";
  for (const auto& [key, value] : r.extra)
    std::cout << "  " << key << "=" << json_number(value);
  std::cout << "\n";
}

}  // namespace radsurf::bench
