// Reproduces paper Fig. 4: the spatial decay S(d) = n^2/(d+n)^2 heatmap
// around the particle impact point.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "fig4"; see specs/fig4.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("fig4", argc, argv);
}
