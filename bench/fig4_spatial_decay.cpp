// Reproduces paper Fig. 4: the spatial decay S(d) = n^2/(d+n)^2 heatmap
// around the particle impact point.
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::fig4_spatial_decay();
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
