// Ablation: decoder choice under radiation (DESIGN.md Sec. 8).
//
// The paper fixes MWPM as the decoder (best accuracy/latency trade-off,
// Sec. II-D).  This bench quantifies what that choice buys under
// radiation-scale defect densities by re-running a Fig. 5-style strike
// campaign with the union-find and greedy decoders.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(1500);

    Table table({"code", "decoder", "intrinsic LER", "strike LER",
                 "late-event LER"});
    struct Config {
      const char* label;
      std::unique_ptr<SurfaceCode> code;
      Graph arch;
    };
    std::vector<Config> configs;
    configs.push_back({"repetition-(5,1)",
                       std::make_unique<RepetitionCode>(
                           5, RepetitionFlavor::BIT_FLIP),
                       make_mesh(5, 2)});
    configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                       make_mesh(5, 4)});

    for (auto& cfg : configs) {
      for (auto kind : {DecoderKind::MWPM, DecoderKind::UNION_FIND,
                        DecoderKind::GREEDY}) {
        EngineOptions eopts;
        eopts.decoder = kind;
        InjectionEngine engine(*cfg.code, cfg.arch, eopts);
        const auto intrinsic = engine.run_intrinsic(shots, opts.seed);
        const auto strike =
            engine.run_radiation_at(2, 1.0, true, shots, opts.seed + 1);
        const auto late =
            engine.run_radiation_at(2, engine.radiation().temporal(0.5),
                                    true, shots, opts.seed + 2);
        table.add_row({cfg.label, decoder_kind_name(kind),
                       Table::pct(intrinsic.rate()),
                       Table::pct(strike.rate()), Table::pct(late.rate())});
      }
    }
    std::cout << "== Ablation — decoder choice under radiation ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    std::cout << "note: paper uses MWPM throughout (Sec. II-D); union-find "
                 "and greedy trade accuracy for speed\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
