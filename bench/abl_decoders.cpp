// Ablation: decoder choice under radiation (the paper fixes MWPM).
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_decoders"; see specs/abl_decoders.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_decoders", argc, argv);
}
