// Ablation: the paper's E (x) E two-qubit noise (Eq. 4) vs the uniform
// 15-Pauli depolarizing channel (DESIGN.md Sec. 8).
//
// The two channels have different marginals (E (x) E can hit both qubits
// with probability p^2-ish terms rather than a flat p/15); this bench
// shows whether the paper's conclusions are sensitive to that choice.
#include <exception>
#include <iostream>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/experiments.hpp"
#include "inject/campaign.hpp"
#include "util/table.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    const std::size_t shots = opts.resolve_shots(2000);

    Table table({"code", "two-qubit channel", "p", "intrinsic LER",
                 "strike LER"});
    struct Config {
      const char* label;
      std::unique_ptr<SurfaceCode> code;
      Graph arch;
    };
    std::vector<Config> configs;
    configs.push_back({"repetition-(5,1)",
                       std::make_unique<RepetitionCode>(
                           5, RepetitionFlavor::BIT_FLIP),
                       make_mesh(5, 2)});
    configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                       make_mesh(5, 4)});

    for (auto& cfg : configs) {
      for (double p : {1e-3, 1e-2, 5e-2}) {
        for (bool uniform : {false, true}) {
          EngineOptions eopts;
          eopts.physical_error_rate = p;
          eopts.uniform_two_qubit = uniform;
          InjectionEngine engine(*cfg.code, cfg.arch, eopts);
          const auto intrinsic = engine.run_intrinsic(shots, opts.seed);
          const auto strike =
              engine.run_radiation_at(2, 1.0, true, shots, opts.seed + 1);
          table.add_row({cfg.label,
                         uniform ? "uniform-15" : "E(x)E (paper)",
                         Table::fmt(p, 4), Table::pct(intrinsic.rate()),
                         Table::pct(strike.rate())});
        }
      }
    }
    std::cout << "== Ablation — two-qubit depolarizing channel ==\n";
    std::cout << (opts.csv ? table.to_csv() : table.to_string());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
