// Ablation: the paper's E (x) E two-qubit noise vs the uniform
// 15-Pauli depolarizing channel.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "abl_noise_channel"; see specs/abl_noise_channel.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("abl_noise_channel", argc, argv);
}
