// Timeline extension (beyond the paper): logical error per round under
// Poisson-arriving radiation events, decoded with sliding windows.
// Compatibility shim: parses the historical flags and routes through the
// scenario registry (scenario "ext_timeline"; see specs/ext_timeline.json).
#include "cli/runner.hpp"

int main(int argc, char** argv) {
  return radsurf::legacy_scenario_main("ext_timeline", argc, argv);
}
