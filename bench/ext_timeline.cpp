// Timeline extension (beyond the paper): logical error per round under
// Poisson-arriving radiation events during N-round memory experiments,
// decoded with sliding windows — repetition-(5,1) on a 5x2 mesh and
// XXZZ-(3,3) on a 5x4 mesh.
#include <exception>
#include <iostream>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  try {
    const auto opts = radsurf::ExperimentOptions::from_args(argc, argv);
    const auto report = radsurf::ext_timeline(opts);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
