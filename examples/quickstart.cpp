// Quickstart: build a surface code, expose it to a radiation strike, and
// decode — the full radsurf pipeline in ~40 lines.
//
//   $ ./quickstart
//
#include <iostream>

#include "core/radsurf.hpp"

using namespace radsurf;

int main() {
  // 1. A distance-(3,3) XXZZ rotated surface code (18 physical qubits),
  //    exactly the configuration of the paper's Fig. 1.
  XXZZCode code(3, 3);
  std::cout << "code: " << code.name() << " on " << code.num_qubits()
            << " qubits (" << code.num_z_plaquettes() << " Z + "
            << code.num_x_plaquettes() << " X plaquettes)\n";

  // 2. An injection engine: transpiles the code onto a 5x4 mesh, builds
  //    the MWPM decoder from the intrinsic noise model (p = 1e-2), and
  //    prepares the noiseless reference.
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  std::cout << "transpiled: " << engine.transpiled().ops_after
            << " physical ops, " << engine.transpiled().swap_count
            << " SWAPs inserted\n";

  // 3. Baseline: intrinsic noise only.
  const Proportion baseline = engine.run_intrinsic(2000, /*seed=*/1);
  std::cout << "intrinsic-only logical error rate:  "
            << format_rate_ci(baseline) << "\n";

  // 4. A radiation strike on physical qubit 2, spreading over the mesh
  //    with S(d) = 1/(d+1)^2, at full temporal intensity T(0) = 1.
  const Proportion strike =
      engine.run_radiation_at(/*root=*/2, /*root_prob=*/1.0,
                              /*spread=*/true, 2000, /*seed=*/2);
  std::cout << "radiation-strike logical error rate: "
            << format_rate_ci(strike) << "\n";

  // 5. The full event: LER at each of the 10 temporal samples of T^(t).
  std::cout << "full event evolution (t, T(t), LER):\n";
  const auto series = engine.run_radiation_event(2, 1000, /*seed=*/3);
  const auto times = engine.radiation().sample_times();
  const auto values = engine.radiation().sample_values();
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::cout << "  t=" << Table::fmt(times[i], 2)
              << "  T=" << Table::fmt(values[i], 4) << "  LER="
              << Table::pct(series[i].rate()) << "\n";
  }
  return 0;
}
