// Scenario: a cosmic-ray burst hitting different parts of the chip.
//
// Mirrors the Google AI field observations the paper builds on: a strike
// corrupts a neighbourhood of qubits for the duration of many shots.  We
// sweep the impact point over every active physical qubit and report how
// the logical error depends on where the particle lands and what role the
// struck qubit plays (data / stabilizer / ancilla) — a per-qubit
// criticality map like the paper's Fig. 8 nodes.
//
//   $ ./radiation_burst [shots-per-sample]
//
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/radsurf.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  const std::size_t shots =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;

  RepetitionCode code(11, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 6), EngineOptions{});

  std::cout << "burst sweep: " << code.name() << " on a 5x6 mesh, "
            << engine.active_qubits().size() << " candidate impact points, "
            << shots << " shots per temporal sample\n\n";

  Table table({"impact qubit", "role", "median LER over event",
               "LER at strike"});
  std::map<std::string, std::vector<double>> by_role;
  std::uint64_t seed = 42;
  for (std::uint32_t root : engine.active_qubits()) {
    const auto series = engine.run_radiation_event(root, shots, seed += 7);
    const double med = median_rate(series);
    const std::string role = role_name(engine.role_of_physical(root));
    by_role[role].push_back(med);
    table.add_row({std::to_string(root), role, Table::pct(med),
                   Table::pct(series.front().rate())});
  }
  std::cout << table.to_string() << "\n";

  std::cout << "criticality by role (median of medians):\n";
  for (auto& [role, rates] : by_role) {
    std::cout << "  " << role << ": " << Table::pct(median(rates)) << " ("
              << rates.size() << " qubits)\n";
  }
  std::cout << "\npaper Obs. VII: qubits used earlier in the gate sequence "
               "are more critical.\n";
  return 0;
}
