// Scenario: is exact MWPM worth it under radiation?
//
// The paper fixes MWPM as the decoder.  This example compares the exact
// blossom-based MWPM against the union-find and greedy decoders across the
// whole temporal evolution of a strike, showing where cheap decoders give
// up accuracy (dense defect sets near t = 0) and where they don't (the
// decayed tail).
//
//   $ ./decoder_comparison [shots-per-sample]
//
#include <cstdlib>
#include <iostream>

#include "core/radsurf.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  const std::size_t shots =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;

  XXZZCode code(3, 3);
  std::cout << "decoder comparison on " << code.name()
            << " under a spreading strike at qubit 2 (" << shots
            << " shots per temporal sample)\n\n";

  Table table({"t", "T(t)", "mwpm", "union-find", "greedy"});
  std::vector<std::vector<double>> series;
  for (auto kind :
       {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
    EngineOptions opts;
    opts.decoder = kind;
    InjectionEngine engine(code, make_mesh(5, 4), opts);
    std::vector<double> rates;
    for (const auto& p : engine.run_radiation_event(2, shots, /*seed=*/5))
      rates.push_back(p.rate());
    series.push_back(std::move(rates));
  }

  const RadiationModel model;
  const auto times = model.sample_times();
  const auto values = model.sample_values();
  for (std::size_t i = 0; i < times.size(); ++i) {
    table.add_row({Table::fmt(times[i], 2), Table::fmt(values[i], 4),
                   Table::pct(series[0][i]), Table::pct(series[1][i]),
                   Table::pct(series[2][i])});
  }
  std::cout << table.to_string();
  std::cout << "\npaper Sec. II-D: MWPM is the accuracy/latency sweet spot; "
               "alternatives are out of the paper's scope but provided "
               "here as ablations.\n";
  return 0;
}
