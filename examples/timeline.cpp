// Scenario: a long memory experiment riding out Poisson-arriving strikes.
//
// The paper injects one radiation event into a 2-round experiment; a real
// device keeps measuring syndromes for thousands of rounds while particles
// arrive at some rate.  This example runs a repetition-(5,1) memory over
// many rounds, samples a timeline of strikes (rate per round, decaying over
// several rounds, spreading over the mesh), and decodes each shot with
// sliding windows so the decoder state stays O(window) no matter how long
// the history grows.
//
//   $ ./example_timeline [rounds] [events-per-round]
//
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/radsurf.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  const std::size_t rounds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50;
  const double rate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.05;
  const std::size_t shots = 2000;

  EngineOptions opts;
  opts.rounds = rounds;
  opts.whole_history_decoder = false;  // sliding windows only: O(window)
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), opts);

  TimelineOptions topts;
  topts.events_per_round = rate;
  topts.duration_rounds = 10;
  const RadiationTimeline timeline(engine.radiation(), topts);

  Rng rng(2026);
  const auto events = timeline.sample(rounds, engine.active_qubits(), rng);
  std::cout << code.name() << " memory, " << rounds << " rounds, "
            << "event rate " << rate << "/round -> " << events.size()
            << " strikes:\n";
  for (const RadiationEvent& e : events) {
    std::cout << "  round " << e.round << ": strike at qubit " << e.root
              << " (peak reset probability " << e.intensity << ")\n";
  }

  const SlidingWindowOptions window{10, 5};
  const SlidingWindowDecoder probe(engine.matching_graph(),
                                   engine.detector_rounds(), rounds, window);
  std::cout << "\nsliding-window decoder: " << probe.num_windows()
            << " windows of " << window.window << " rounds, "
            << probe.num_decoders() << " distinct shapes, <= "
            << probe.max_window_detectors() << " detectors each (history: "
            << engine.matching_graph().num_detectors() << ")\n";

  const Proportion p =
      engine.run_timeline(timeline, events, shots, 7, window);
  const double per_round =
      1.0 - std::pow(1.0 - p.rate(), 1.0 / static_cast<double>(rounds));
  std::cout << "\nlogical error: " << Table::pct(p.rate()) << " over "
            << shots << " shots  [" << Table::pct(p.wilson_low()) << ", "
            << Table::pct(p.wilson_high()) << "]\n"
            << "per round: " << Table::pct(per_round) << "\n"
            << "syndrome-cache hit rate: "
            << Table::pct(engine.decode_cache_stats().hit_rate()) << "\n";
  return 0;
}
