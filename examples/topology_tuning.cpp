// Scenario: choosing a hardware topology for radiation resilience (RQ2).
//
// The paper shows that picking the right architecture buys 7-10% logical
// error without any QEC overhead.  This example ranks the built-in
// architectures for a given code by (a) SWAP overhead after transpilation
// and (b) median logical error under a spreading strike, and prints a
// recommendation.
//
//   $ ./topology_tuning [shots]
//
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/radsurf.hpp"

using namespace radsurf;

int main(int argc, char** argv) {
  const std::size_t shots =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;

  XXZZCode code(3, 3);
  const std::vector<std::string> archs = {
      "mesh:5x4", "complete:18", "linear:18",
      "almaden",  "johannesburg", "cambridge"};

  std::cout << "topology tuning for " << code.name() << " ("
            << code.num_qubits() << " qubits), " << shots
            << " shots per config\n\n";

  struct Row {
    std::string arch;
    double avg_degree;
    std::size_t swaps;
    double strike_ler;
  };
  std::vector<Row> rows;
  for (const auto& name : archs) {
    const Graph arch = make_topology(name);
    InjectionEngine engine(code, arch, EngineOptions{});
    // Median over a few representative impact points.
    std::vector<Proportion> strikes;
    std::uint64_t seed = 7;
    const auto& active = engine.active_qubits();
    for (std::size_t i = 0; i < active.size(); i += 4) {
      strikes.push_back(
          engine.run_radiation_at(active[i], 1.0, true, shots, seed += 3));
    }
    rows.push_back({name, arch.average_degree(),
                    engine.transpiled().swap_count, median_rate(strikes)});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) {
              return a.strike_ler < b.strike_ler;
            });

  Table table({"rank", "architecture", "avg degree", "SWAPs",
               "median strike LER"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({std::to_string(i + 1), rows[i].arch,
                   Table::fmt(rows[i].avg_degree, 2),
                   std::to_string(rows[i].swaps),
                   Table::pct(rows[i].strike_ler)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "recommendation: " << rows.front().arch
            << " — lowest strike-time logical error for this code.\n";
  std::cout << "paper Obs. VIII: well-connected architectures reduce SWAP "
               "overhead and with it the fault's spread surface.\n";
  return 0;
}
