// Build and run a declarative campaign spec programmatically — the C++
// counterpart of `radsurf run specs/grid_*.json`.
//
// Constructs a small grid campaign (two decoders x two intrinsic error
// rates x {intrinsic, strike} injections), runs it twice against the same
// checkpoint file, and shows that the second pass resumes every cell
// instead of recomputing.
#include <cstdio>
#include <iostream>

#include "cli/checkpoint.hpp"
#include "cli/registry.hpp"
#include "cli/runner.hpp"

int main() {
  using namespace radsurf;

  ScenarioSpec spec;
  spec.scenario = "grid";
  spec.shots = 200;
  spec.seed = 20260730;
  spec.params = JsonValue::parse(R"({
    "configs": [{"code": "repetition:5", "arch": "mesh:5x2"}],
    "decoders": ["mwpm", "greedy"],
    "error_rates": [0.001, 0.01],
    "injections": [
      {"kind": "intrinsic"},
      {"kind": "radiation", "root": 2, "intensity": 1.0}
    ]
  })");

  const std::string ckpt = "spec_campaign.ckpt.jsonl";
  std::remove(ckpt.c_str());

  {
    JsonlCheckpointSink sink(ckpt, spec.fingerprint());
    const ExperimentReport report = make_scenario(spec)->run(&sink);
    std::cout << report.to_string() << "\n";
  }
  {
    // Same spec, same checkpoint: every cell is replayed from the file.
    JsonlCheckpointSink sink(ckpt, spec.fingerprint());
    std::cout << "resuming with " << sink.loaded()
              << " checkpointed cells...\n";
    const ExperimentReport report = make_scenario(spec)->run(&sink);
    std::cout << report.notes.front() << "\n";
  }

  std::remove(ckpt.c_str());
  return 0;
}
